//! The item-level Rust parser behind the semantic rules.
//!
//! Input is a file's significant-token stream (comments already
//! stripped); output is an [`Ast`]. The parser is **total**: any token
//! stream produces an AST without panicking, with unrecognized
//! constructs consumed as [`ItemKind::Other`] ("unparsed"). Top-level
//! item ranges partition the stream — every token attributed, no
//! overlap, strictly increasing — which the workspace property test
//! asserts file by file.
//!
//! What it deliberately does not do: expression typing, pattern
//! grammar, macro expansion. Function bodies reduce to the statement
//! skeleton documented in [`crate::ast`].

use crate::ast::{
    Ast, Call, EnumDecl, FieldDecl, FnDecl, ImplBlock, Item, ItemKind, ModDecl, Param, Stmt,
    StmtKind, StructDecl,
};
use crate::lexer::{TokKind, Token};

/// Parses a significant-token stream into an AST.
pub fn parse(src: &str, sig: &[Token]) -> Ast {
    let p = Parser { src, toks: sig };
    Ast {
        items: p.parse_items(0, sig.len()),
    }
}

/// Keywords that can never be identifier reads in the skeleton.
const KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "move", "if", "else", "match", "for", "while", "loop", "in", "return",
    "break", "continue", "fn", "pub", "use", "as", "impl", "struct", "enum", "mod", "trait",
    "type", "const", "static", "where", "dyn", "crate", "super", "unsafe", "async", "await",
    "extern", "true", "false",
];

struct Parser<'s> {
    src: &'s str,
    toks: &'s [Token],
}

impl<'s> Parser<'s> {
    fn text(&self, i: usize) -> &'s str {
        self.toks.get(i).map_or("", |t| t.text(self.src))
    }

    fn kind(&self, i: usize) -> Option<TokKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    fn is(&self, i: usize, s: &str) -> bool {
        self.text(i) == s
    }

    fn is_ident(&self, i: usize) -> bool {
        self.kind(i) == Some(TokKind::Ident)
    }

    /// Two puncts form a glued operator (`::`, `->`, `=>`) only when
    /// byte-adjacent.
    fn glued(&self, i: usize) -> bool {
        match (self.toks.get(i), self.toks.get(i + 1)) {
            (Some(a), Some(b)) => a.end == b.start,
            _ => false,
        }
    }

    /// `::` starting at token `i`?
    fn is_path_sep(&self, i: usize) -> bool {
        self.is(i, ":") && self.glued(i) && self.is(i + 1, ":")
    }

    /// Index just past the bracket matching the opener at `open`
    /// (clamped to `hi`). Counts `(`/`[`/`{` uniformly so mixed nesting
    /// stays balanced even on malformed input.
    fn skip_balanced(&self, open: usize, hi: usize) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < hi {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        hi
    }

    /// Skips a generics list starting at a `<`. `>` that belongs to a
    /// glued `->` (as in `F: Fn() -> T`) does not close the list.
    fn skip_generics(&self, open: usize, hi: usize) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < hi {
            let t = self.text(i);
            if t == "<" {
                depth += 1;
            } else if t == ">" {
                let arrow = i > 0 && self.is(i - 1, "-") && self.glued(i - 1);
                if !arrow {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
            } else if t == "(" || t == "[" {
                i = self.skip_balanced(i, hi);
                continue;
            } else if t == "{" || t == ";" {
                // Malformed generics: bail rather than swallow the body.
                return i;
            }
            i += 1;
        }
        hi
    }

    /// Whitespace-joined text of a token range (for types and paths).
    fn join(&self, lo: usize, hi: usize) -> String {
        let mut out = String::new();
        for i in lo..hi.min(self.toks.len()) {
            let t = self.text(i);
            if !out.is_empty() && t != ":" && !self.text(i - 1).ends_with(':') {
                out.push(' ');
            }
            out.push_str(t);
        }
        out
    }

    // ---- items ----------------------------------------------------------

    /// Parses `[lo, hi)` into items whose ranges tile it exactly.
    fn parse_items(&self, lo: usize, hi: usize) -> Vec<Item> {
        let mut items = Vec::new();
        let mut i = lo;
        while i < hi {
            let item = self.parse_item(i, hi);
            debug_assert!(item.hi > i, "parser must make progress");
            i = item.hi.max(i + 1);
            items.push(item);
        }
        items
    }

    /// Parses one item starting at `lo`; always consumes at least one
    /// token.
    fn parse_item(&self, lo: usize, hi: usize) -> Item {
        let mut i = lo;
        let mut cfg_test = false;
        let mut test_attr = false;
        // Leading attributes. Inner attributes (`#![…]`) belong to the
        // enclosing scope: emitted as standalone "attr" items.
        while self.is(i, "#") && i < hi {
            let inner = self.is(i + 1, "!");
            let open = if inner { i + 2 } else { i + 1 };
            if !self.is(open, "[") {
                break;
            }
            let end = self.skip_balanced(open, hi);
            if inner {
                if i == lo {
                    return self.mk(lo, end, ItemKind::Other("attr"));
                }
                break;
            }
            let attr = self.join(open + 1, end.saturating_sub(1));
            if attr.starts_with("cfg") && attr.contains("test") {
                cfg_test = true;
            }
            if attr == "test" || attr.starts_with("test ") || attr.contains("tokio :: test") {
                test_attr = true;
            }
            i = end;
        }
        if i >= hi {
            return self.mk(lo, hi.max(lo + 1), ItemKind::Other("attr"));
        }
        // Visibility and leading modifiers.
        let mut j = i;
        if self.is(j, "pub") {
            j += 1;
            if self.is(j, "(") {
                j = self.skip_balanced(j, hi);
            }
        }
        while matches!(self.text(j), "unsafe" | "async" | "extern") {
            if self.is(j, "extern") && self.kind(j + 1) == Some(TokKind::Str) {
                j += 1; // extern "C"
            }
            j += 1;
        }
        // `const fn` vs `const NAME`.
        if self.is(j, "const") && self.is(j + 1, "fn") {
            j += 1;
        }
        let test = test_attr || cfg_test;
        match self.text(j) {
            "fn" => {
                let (decl, end) = self.parse_fn(j, hi, test);
                self.mk(lo, end, ItemKind::Fn(decl))
            }
            "struct" | "union" => {
                let (decl, end) = self.parse_struct(j, hi);
                self.mk(lo, end, ItemKind::Struct(decl))
            }
            "enum" => {
                let (decl, end) = self.parse_enum(j, hi);
                self.mk(lo, end, ItemKind::Enum(decl))
            }
            "impl" => {
                let (block, end) = self.parse_impl(j, hi);
                self.mk(lo, end, ItemKind::Impl(block))
            }
            "mod" => {
                let name = if self.is_ident(j + 1) {
                    self.text(j + 1).to_string()
                } else {
                    String::new()
                };
                if self.is(j + 2, ";") {
                    return self.mk(
                        lo,
                        j + 3,
                        ItemKind::Mod(ModDecl {
                            name,
                            cfg_test,
                            items: Vec::new(),
                        }),
                    );
                }
                let mut k = j + 1;
                while k < hi && !self.is(k, "{") && !self.is(k, ";") {
                    k += 1;
                }
                if !self.is(k, "{") {
                    return self.mk(lo, (k + 1).min(hi.max(lo + 1)), ItemKind::Other("unparsed"));
                }
                let end = self.skip_balanced(k, hi);
                let items = self.parse_items(k + 1, end.saturating_sub(1));
                self.mk(
                    lo,
                    end,
                    ItemKind::Mod(ModDecl {
                        name,
                        cfg_test,
                        items,
                    }),
                )
            }
            "use" => {
                let mut k = j + 1;
                while k < hi && !self.is(k, ";") {
                    if self.is(k, "{") {
                        k = self.skip_balanced(k, hi);
                        continue;
                    }
                    k += 1;
                }
                let path = self.join(j + 1, k);
                self.mk(lo, (k + 1).min(hi), ItemKind::Use(path))
            }
            "trait" => {
                let end = self.consume_to_block_or_semi(j, hi);
                self.mk(lo, end, ItemKind::Other("trait"))
            }
            "const" | "static" | "type" => {
                let label = match self.text(j) {
                    "static" => "static",
                    "type" => "type",
                    _ => "const",
                };
                let end = self.consume_to_semi(j, hi);
                self.mk(lo, end, ItemKind::Other(label))
            }
            "macro_rules" => {
                let end = self.consume_to_block_or_semi(j, hi);
                self.mk(lo, end, ItemKind::Other("macro"))
            }
            "extern" => {
                let end = self.consume_to_block_or_semi(j, hi);
                self.mk(lo, end, ItemKind::Other("extern"))
            }
            // Item-position macro invocation: `proptest! { … }`,
            // `criterion_main!(benches);`, `id_snapshot!(OsdId, …);`.
            _ if self.is_ident(j) && self.is(j + 1, "!") => {
                let end = self.consume_to_block_or_semi(j, hi);
                self.mk(lo, end, ItemKind::Other("macro"))
            }
            _ => {
                let end = self.consume_to_block_or_semi(j, hi);
                self.mk(lo, end, ItemKind::Other("unparsed"))
            }
        }
    }

    fn mk(&self, lo: usize, hi: usize, kind: ItemKind) -> Item {
        Item {
            kind,
            lo,
            hi: hi.max(lo + 1),
            line: self.line(lo),
        }
    }

    /// Consumes through the next top-level `;`.
    fn consume_to_semi(&self, lo: usize, hi: usize) -> usize {
        let mut i = lo;
        while i < hi {
            match self.text(i) {
                ";" => return i + 1,
                "(" | "[" | "{" => {
                    i = self.skip_balanced(i, hi);
                    continue;
                }
                "}" | ")" | "]" => return i + 1, // stray closer: consume it
                _ => {}
            }
            i += 1;
        }
        hi
    }

    /// Consumes through a balanced `{…}` block or a `;`, whichever
    /// comes first.
    fn consume_to_block_or_semi(&self, lo: usize, hi: usize) -> usize {
        let mut i = lo;
        while i < hi {
            match self.text(i) {
                ";" => return i + 1,
                "{" => return self.skip_balanced(i, hi),
                "(" | "[" => {
                    i = self.skip_balanced(i, hi);
                    continue;
                }
                "}" | ")" | "]" => return i + 1,
                _ => {}
            }
            i += 1;
        }
        hi
    }

    // ---- fn -------------------------------------------------------------

    /// At the `fn` keyword: parses signature and body skeleton.
    fn parse_fn(&self, at: usize, hi: usize, test: bool) -> (FnDecl, usize) {
        let name = if self.is_ident(at + 1) {
            self.text(at + 1).to_string()
        } else {
            String::new()
        };
        let line = self.line(at);
        let mut i = at + 2;
        if self.is(i, "<") {
            i = self.skip_generics(i, hi);
        }
        let mut params = Vec::new();
        let mut params_end = i;
        if self.is(i, "(") {
            params_end = self.skip_balanced(i, hi);
            params = self.parse_params(i + 1, params_end.saturating_sub(1));
        }
        // Return type.
        let mut ret = None;
        let mut j = params_end;
        if self.is(j, "-") && self.glued(j) && self.is(j + 1, ">") {
            let ret_lo = j + 2;
            let mut k = ret_lo;
            while k < hi && !matches!(self.text(k), "{" | ";" | "where") {
                if self.is(k, "(") || self.is(k, "[") {
                    k = self.skip_balanced(k, hi);
                    continue;
                }
                if self.is(k, "<") {
                    k = self.skip_generics(k, hi);
                    continue;
                }
                k += 1;
            }
            ret = Some(self.join(ret_lo, k));
            j = k;
        }
        // Where clause.
        while j < hi && !matches!(self.text(j), "{" | ";") {
            if self.is(j, "(") || self.is(j, "[") {
                j = self.skip_balanced(j, hi);
                continue;
            }
            j += 1;
        }
        if self.is(j, ";") {
            return (
                FnDecl {
                    name,
                    line,
                    test,
                    params,
                    ret,
                    body: Vec::new(),
                    body_range: None,
                },
                j + 1,
            );
        }
        let body_end = self.skip_balanced(j, hi);
        let body = self.parse_body(j + 1, body_end.saturating_sub(1));
        (
            FnDecl {
                name,
                line,
                test,
                params,
                ret,
                body,
                body_range: Some((j, body_end)),
            },
            body_end,
        )
    }

    /// Parses a comma-separated parameter list in `[lo, hi)`.
    fn parse_params(&self, lo: usize, hi: usize) -> Vec<Param> {
        let mut out = Vec::new();
        let mut start = lo;
        let mut depth = 0i64;
        let mut i = lo;
        while i <= hi {
            let at_end = i == hi;
            if at_end || (depth == 0 && self.is(i, ",")) {
                if i > start {
                    out.push(self.parse_param(start, i));
                }
                start = i + 1;
                if at_end {
                    break;
                }
            } else {
                match self.text(i) {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ">" if !(i > 0 && self.is(i - 1, "-") && self.glued(i - 1)) => depth -= 1,
                    _ => {}
                }
            }
            i += 1;
        }
        out
    }

    fn parse_param(&self, lo: usize, hi: usize) -> Param {
        // Receiver: any `self` before a top-level `:` means `&mut self`
        // and friends (a typed `self: Box<Self>` still names self).
        let colon = (lo..hi).find(|&i| self.is(i, ":") && !self.is_path_sep(i));
        let pat_hi = colon.unwrap_or(hi);
        if (lo..pat_hi).any(|i| self.is(i, "self")) {
            return Param {
                name: "self".to_string(),
                ty: "Self".to_string(),
            };
        }
        let name = (lo..pat_hi)
            .find(|&i| self.is_ident(i) && !matches!(self.text(i), "mut" | "ref"))
            .map(|i| self.text(i).to_string())
            .unwrap_or_default();
        let ty = colon.map(|c| self.join(c + 1, hi)).unwrap_or_default();
        Param { name, ty }
    }

    // ---- struct / enum --------------------------------------------------

    fn parse_struct(&self, at: usize, hi: usize) -> (StructDecl, usize) {
        let name = if self.is_ident(at + 1) {
            self.text(at + 1).to_string()
        } else {
            String::new()
        };
        let mut i = at + 2;
        if self.is(i, "<") {
            i = self.skip_generics(i, hi);
        }
        // Tuple struct or unit struct: no named fields.
        while i < hi && !matches!(self.text(i), "{" | "(" | ";") {
            i += 1;
        }
        if self.is(i, "(") {
            let end = self.skip_balanced(i, hi);
            let end = if self.is(end, ";") { end + 1 } else { end };
            return (
                StructDecl {
                    name,
                    fields: Vec::new(),
                },
                end,
            );
        }
        if !self.is(i, "{") {
            return (
                StructDecl {
                    name,
                    fields: Vec::new(),
                },
                (i + 1).min(hi.max(at + 1)),
            );
        }
        let end = self.skip_balanced(i, hi);
        let fields = self.parse_fields(i + 1, end.saturating_sub(1));
        (StructDecl { name, fields }, end)
    }

    /// Named fields inside a struct body: `[vis] name: Type,`.
    fn parse_fields(&self, lo: usize, hi: usize) -> Vec<FieldDecl> {
        let mut out = Vec::new();
        let mut i = lo;
        while i < hi {
            // Skip field attributes and visibility.
            if self.is(i, "#") && self.is(i + 1, "[") {
                i = self.skip_balanced(i + 1, hi);
                continue;
            }
            if self.is(i, "pub") {
                i += 1;
                if self.is(i, "(") {
                    i = self.skip_balanced(i, hi);
                }
                continue;
            }
            if self.is_ident(i) && self.is(i + 1, ":") && !self.is_path_sep(i + 1) {
                let name = self.text(i).to_string();
                let line = self.line(i);
                // Type runs to the next top-level comma.
                let mut k = i + 2;
                let mut depth = 0i64;
                while k < hi {
                    match self.text(k) {
                        "," if depth == 0 => break,
                        "(" | "[" | "{" | "<" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ">" if !(self.is(k - 1, "-") && self.glued(k - 1)) => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                out.push(FieldDecl {
                    name,
                    ty: self.join(i + 2, k),
                    line,
                });
                i = k + 1;
                continue;
            }
            i += 1;
        }
        out
    }

    fn parse_enum(&self, at: usize, hi: usize) -> (EnumDecl, usize) {
        let name = if self.is_ident(at + 1) {
            self.text(at + 1).to_string()
        } else {
            String::new()
        };
        let mut i = at + 2;
        if self.is(i, "<") {
            i = self.skip_generics(i, hi);
        }
        while i < hi && !matches!(self.text(i), "{" | ";") {
            i += 1;
        }
        if !self.is(i, "{") {
            return (
                EnumDecl {
                    name,
                    variants: Vec::new(),
                },
                (i + 1).min(hi.max(at + 1)),
            );
        }
        let end = self.skip_balanced(i, hi);
        let mut variants = Vec::new();
        let mut j = i + 1;
        let body_hi = end.saturating_sub(1);
        let mut expect = true;
        while j < body_hi {
            match self.text(j) {
                "#" if self.is(j + 1, "[") => {
                    j = self.skip_balanced(j + 1, body_hi);
                    continue;
                }
                "(" | "{" | "[" => {
                    j = self.skip_balanced(j, body_hi);
                    continue;
                }
                "," => expect = true,
                "=" => expect = false, // discriminant expr
                _ => {
                    if expect && self.is_ident(j) {
                        variants.push((self.text(j).to_string(), self.line(j)));
                        expect = false;
                    }
                }
            }
            j += 1;
        }
        (EnumDecl { name, variants }, end)
    }

    // ---- impl -----------------------------------------------------------

    fn parse_impl(&self, at: usize, hi: usize) -> (ImplBlock, usize) {
        let mut i = at + 1;
        if self.is(i, "<") {
            i = self.skip_generics(i, hi);
        }
        // Header up to `{`: optional `Trait for` then the type path.
        let mut header_end = i;
        while header_end < hi && !matches!(self.text(header_end), "{" | ";") {
            if self.is(header_end, "(") || self.is(header_end, "[") {
                header_end = self.skip_balanced(header_end, hi);
                continue;
            }
            header_end += 1;
        }
        let mut for_at = None;
        let mut k = i;
        while k < header_end {
            if self.is(k, "for") && !self.is(k + 1, "<") {
                for_at = Some(k);
                break;
            }
            if self.is(k, "<") {
                k = self.skip_generics(k, hi.min(header_end));
                continue;
            }
            k += 1;
        }
        let last_seg = |lo: usize, hi_: usize| -> String {
            let mut last = String::new();
            let mut m = lo;
            while m < hi_ {
                if self.is(m, "<") {
                    m = self.skip_generics(m, hi_);
                    continue;
                }
                if self.is_ident(m) && !matches!(self.text(m), "dyn" | "where") {
                    last = self.text(m).to_string();
                }
                m += 1;
            }
            last
        };
        let (trait_name, type_name) = match for_at {
            Some(f) => (Some(last_seg(i, f)), last_seg(f + 1, header_end)),
            None => (None, last_seg(i, header_end)),
        };
        if !self.is(header_end, "{") {
            return (
                ImplBlock {
                    trait_name,
                    type_name,
                    fns: Vec::new(),
                },
                (header_end + 1).min(hi.max(at + 1)),
            );
        }
        let end = self.skip_balanced(header_end, hi);
        let inner = self.parse_items(header_end + 1, end.saturating_sub(1));
        let fns = inner
            .into_iter()
            .filter_map(|it| match it.kind {
                ItemKind::Fn(f) => Some(f),
                _ => None,
            })
            .collect();
        (
            ImplBlock {
                trait_name,
                type_name,
                fns,
            },
            end,
        )
    }

    // ---- statement skeleton ---------------------------------------------

    /// Splits a body's token range into the flat statement skeleton:
    /// segments between `;` (at bracket depth 0), `{`, and `}`.
    fn parse_body(&self, lo: usize, hi: usize) -> Vec<Stmt> {
        let mut out = Vec::new();
        let mut depth: u32 = 1;
        let mut start = lo;
        let mut bracket = 0i64; // ( and [ nesting — `;` inside stays put
        let mut i = lo;
        while i < hi {
            match self.text(i) {
                "{" => {
                    self.flush_stmt(start, i, depth, false, &mut out);
                    depth += 1;
                    start = i + 1;
                }
                "}" => {
                    let tail = depth == 1; // closing the body itself
                    self.flush_stmt(start, i, depth, tail, &mut out);
                    depth = depth.saturating_sub(1).max(1);
                    start = i + 1;
                }
                "(" | "[" => bracket += 1,
                ")" | "]" => bracket -= 1,
                ";" if bracket <= 0 => {
                    self.flush_stmt(start, i, depth, false, &mut out);
                    start = i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        self.flush_stmt(start, hi, depth, true, &mut out);
        out
    }

    fn flush_stmt(&self, lo: usize, hi: usize, depth: u32, tail: bool, out: &mut Vec<Stmt>) {
        if lo >= hi {
            return;
        }
        let kind = self.classify_stmt(lo, hi, tail);
        out.push(Stmt {
            line: self.line(lo),
            lo,
            hi,
            depth,
            kind,
            calls: self.collect_calls(lo, hi),
            idents: self.collect_paths(lo, hi),
        });
    }

    fn classify_stmt(&self, lo: usize, hi: usize, tail: bool) -> StmtKind {
        if self.is(lo, "let") {
            // Bound names: idents in the pattern (before any top-level
            // `:` type ascription or the `=`), skipping path heads and
            // constructor names.
            let mut names = Vec::new();
            let mut i = lo + 1;
            while i < hi && !self.is(i, "=") {
                match self.text(i) {
                    ":" if !self.is_path_sep(i) => {
                        // Type ascription: skip to `=` at depth 0.
                        while i < hi && !self.is(i, "=") {
                            if matches!(self.text(i), "(" | "[" | "{") {
                                i = self.skip_balanced(i, hi);
                                continue;
                            }
                            i += 1;
                        }
                        break;
                    }
                    _ if self.is_ident(i)
                        && !matches!(self.text(i), "mut" | "ref" | "box")
                        && !self.is(i + 1, "(")
                        && !self.is_path_sep(i + 1) =>
                    {
                        names.push(self.text(i).to_string());
                    }
                    _ => {}
                }
                i += 1;
            }
            return StmtKind::Let { names };
        }
        if self.is(lo, "return") || self.is(lo, "break") {
            return StmtKind::Return;
        }
        // Assignment: a dotted place at the start, then `=` (or a glued
        // compound `+=`-family op).
        let mut i = lo;
        while self.is(i, "*") {
            i += 1; // deref assignment target
        }
        let place_start = i;
        let mut place_end = i;
        while place_end < hi {
            if self.is_ident(place_end)
                || (place_end > place_start && self.kind(place_end) == Some(TokKind::Int))
            {
                place_end += 1;
                if self.is(place_end, ".") {
                    place_end += 1;
                    continue;
                }
                break;
            }
            break;
        }
        if place_end > place_start {
            let mut op = place_end;
            // Compound: `+= -= *= /= %= &= |= ^= <<= >>=`.
            if matches!(self.text(op), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
                && self.glued(op)
                && self.is(op + 1, "=")
            {
                op += 1;
            }
            let plain_eq = self.is(op, "=")
                && !(self.glued(op) && matches!(self.text(op + 1), "=" | ">"))
                && !(op > lo && self.is(op - 1, "=")); // `==`
            if plain_eq && op < hi {
                let target = self.path_text(place_start, place_end);
                if !target.is_empty() {
                    return StmtKind::Assign { target };
                }
            }
        }
        if tail {
            return StmtKind::Return;
        }
        StmtKind::Other
    }

    /// Joined dotted path text over `[lo, hi)` (idents, `.`, tuple
    /// indices).
    fn path_text(&self, lo: usize, hi: usize) -> String {
        let mut out = String::new();
        for i in lo..hi {
            let t = self.text(i);
            if self.is_ident(i) || t == "." || self.kind(i) == Some(TokKind::Int) {
                out.push_str(t);
            }
        }
        out
    }

    /// Calls whose callee token lies within `[lo, hi)`. Argument paths
    /// are read through the matching `)`, which may extend past `hi`
    /// (statement splitting stops at `{` even inside call arguments).
    fn collect_calls(&self, lo: usize, hi: usize) -> Vec<Call> {
        let mut out = Vec::new();
        for i in lo..hi {
            if !(self.is_ident(i) && self.is(i + 1, "(")) {
                continue;
            }
            if KEYWORDS.contains(&self.text(i)) {
                continue;
            }
            // Walk the `::` chain backwards to the path head.
            let mut head = i;
            while head >= 2
                && self.is_path_sep(head - 2)
                && self.is_ident(head.checked_sub(3).unwrap_or(usize::MAX).min(head))
            {
                // head-3 is the previous segment: `seg :: seg`
                if head < 3 || !self.is_ident(head - 3) {
                    break;
                }
                head -= 3;
            }
            let mut callee = String::new();
            let mut seg = head;
            while seg <= i {
                callee.push_str(self.text(seg));
                if seg < i {
                    callee.push_str("::");
                }
                seg += 3;
            }
            // Method call? The token before the path head is a `.`.
            let method = head > 0 && self.is(head - 1, ".");
            let recv = if method && head >= 2 {
                // Receiver: dotted place ending at head-2.
                let mut r_lo = head - 1; // exclusive walk backwards
                loop {
                    let prev = r_lo.checked_sub(1);
                    match prev {
                        Some(p) if self.is_ident(p) || self.kind(p) == Some(TokKind::Int) => {
                            r_lo = p;
                            match r_lo.checked_sub(1) {
                                Some(pp) if self.is(pp, ".") => r_lo = pp,
                                _ => break,
                            }
                        }
                        _ => break,
                    }
                }
                let text = self.path_text(r_lo, head - 1);
                if text.is_empty() || text.starts_with('.') {
                    None
                } else {
                    Some(text)
                }
            } else {
                None
            };
            // Arguments: top-level comma split inside the matching parens.
            let close = self.skip_balanced(i + 1, self.toks.len());
            let mut args = Vec::new();
            let mut a_start = i + 2;
            let mut depth = 0i64;
            let arg_hi = close.saturating_sub(1);
            let mut k = i + 2;
            while k <= arg_hi {
                let end_now = k == arg_hi;
                if end_now || (depth == 0 && self.is(k, ",")) {
                    if k > a_start {
                        args.push(self.collect_paths(a_start, k));
                    }
                    a_start = k + 1;
                    if end_now {
                        break;
                    }
                } else {
                    match self.text(k) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        _ => {}
                    }
                }
                k += 1;
            }
            out.push(Call {
                callee,
                method,
                recv,
                line: self.line(i),
                args,
            });
        }
        out
    }

    /// Maximal dotted identifier paths read in `[lo, hi)`: excludes
    /// callee names (ident directly before `(` or `!`), `::`-path
    /// segments, struct-literal/ascription labels (ident before a lone
    /// `:`), idents after `as`, and keywords.
    fn collect_paths(&self, lo: usize, hi: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = lo;
        while i < hi {
            if !self.is_ident(i) || KEYWORDS.contains(&self.text(i)) {
                i += 1;
                continue;
            }
            // Skip `::`-path chains entirely (types, enum ctors, fns).
            if self.is_path_sep(i + 1) {
                while i < hi && (self.is_ident(i) || self.is_path_sep(i)) {
                    if self.is_path_sep(i) {
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
            // Part of a longer dotted path already emitted?
            if i > lo && self.is(i - 1, ".") {
                i += 1;
                continue;
            }
            // Cast target after `as`.
            if i > lo && self.is(i - 1, "as") {
                i += 1;
                continue;
            }
            // Walk the dotted path forward.
            let start = i;
            let mut end = i + 1;
            while self.is(end, ".")
                && (self.is_ident(end + 1) || self.kind(end + 1) == Some(TokKind::Int))
            {
                end += 2;
            }
            // Trailing segment is a method callee: drop it, keep the
            // receiver (registered as a read).
            let mut path_end = end;
            if self.is(end, "(") && end > start + 1 && self.is(end.saturating_sub(2), ".") {
                path_end = end - 2;
            } else if self.is(end, "(") || self.is(end, "!") {
                // Free-fn callee or macro name: not a read at all.
                i = end;
                continue;
            }
            // Struct-literal label / ascription: `ident :` (not `::`).
            if path_end == start + 1 && self.is(path_end, ":") && !self.is_path_sep(path_end) {
                i = path_end + 1;
                continue;
            }
            let text = self.path_text(start, path_end);
            if !text.is_empty() {
                out.push(text);
            }
            i = end.max(i + 1);
        }
        out
    }
}

//! Workspace file loading and classification: which crate a file
//! belongs to, whether it is library / binary / test / bench / example
//! code, and which line ranges sit inside `#[cfg(test)]` modules.

use crate::ast::Ast;
use crate::lexer::{lex, TokKind, Token};
use crate::parse;
use crate::pragma::{parse_pragmas, Pragma, PragmaError};

/// How a file participates in the build — rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<c>/src/**` excluding `src/bin/` — library code.
    LibSrc,
    /// `crates/<c>/src/bin/**` or `src/main.rs` — a binary.
    BinSrc,
    /// `tests/**` (crate-local or workspace-level) — test code.
    TestCode,
    /// `crates/bench/**` or any `benches/**` — benchmark code.
    Bench,
    /// `examples/**` — example code.
    Example,
}

/// One lexed, classified workspace file.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    pub crate_name: String,
    pub kind: FileKind,
    pub src: String,
    /// Significant tokens: everything except comments.
    pub sig: Vec<Token>,
    pub pragmas: Vec<Pragma>,
    pub pragma_errors: Vec<PragmaError>,
    /// Item-level AST over `sig` (total parse; see [`crate::parse`]).
    pub ast: Ast,
    /// Line ranges (inclusive) of `#[cfg(test)] mod … { … }` bodies.
    cfg_test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    pub fn new(rel_path: String, src: String) -> Self {
        let (crate_name, kind) = classify(&rel_path);
        let tokens = lex(&src);
        let (pragmas, pragma_errors) = parse_pragmas(&src, &tokens);
        let sig: Vec<Token> = tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .copied()
            .collect();
        let cfg_test_ranges = cfg_test_ranges(&src, &sig);
        let ast = parse::parse(&src, &sig);
        SourceFile {
            rel_path,
            crate_name,
            kind,
            src,
            sig,
            pragmas,
            pragma_errors,
            ast,
            cfg_test_ranges,
        }
    }

    /// Is `line` inside a `#[cfg(test)]` module body?
    pub fn in_cfg_test(&self, line: u32) -> bool {
        self.cfg_test_ranges
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

/// (crate name, kind) from a workspace-relative path.
fn classify(rel: &str) -> (String, FileKind) {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", c, rest @ ..] => {
            let name = (*c).to_string();
            let kind = if *c == "bench" || rest.first() == Some(&"benches") {
                FileKind::Bench
            } else if rest.first() == Some(&"tests") {
                FileKind::TestCode
            } else if rest.first() == Some(&"examples") {
                FileKind::Example
            } else if rest.first() == Some(&"src")
                && (rest.get(1) == Some(&"bin") || rest.get(1) == Some(&"main.rs"))
            {
                FileKind::BinSrc
            } else {
                FileKind::LibSrc
            };
            (name, kind)
        }
        // Workspace-level tests/ and examples/ compile into the harness.
        ["tests", ..] => ("harness".to_string(), FileKind::TestCode),
        ["examples", ..] => ("harness".to_string(), FileKind::Example),
        _ => ("<root>".to_string(), FileKind::LibSrc),
    }
}

/// Finds `#[cfg(test)] mod <name> { … }` regions. Attribute and module
/// must be adjacent in the significant-token stream (doc comments in
/// between are fine — they are not significant tokens).
fn cfg_test_ranges(src: &str, sig: &[Token]) -> Vec<(u32, u32)> {
    let text = |i: usize| -> &str { sig[i].text(src) };
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < sig.len() {
        let is_cfg_test = text(i) == "#"
            && text(i + 1) == "["
            && text(i + 2) == "cfg"
            && text(i + 3) == "("
            && text(i + 4) == "test"
            && text(i + 5) == ")"
            && text(i + 6) == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Only module bodies get a line range; `#[cfg(test)]` on other
        // items (rare here) is ignored by this helper.
        let mut j = i + 7;
        if !(j < sig.len() && sig[j].kind == TokKind::Ident && text(j) == "mod") {
            i += 1;
            continue;
        }
        while j < sig.len() && text(j) != "{" {
            j += 1;
        }
        if j == sig.len() {
            break;
        }
        let start_line = sig[i].line;
        let mut depth = 0i32;
        let mut end_line = sig[j].line;
        while j < sig.len() {
            match text(j) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = sig[j].line;
                        break;
                    }
                }
                _ => {}
            }
            end_line = sig[j].line;
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j + 1;
    }
    ranges
}

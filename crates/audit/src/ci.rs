//! `ci.workflow_gate`: the CI workflow and `scripts/check.sh` must not
//! drift apart.
//!
//! `check.sh` declares its composable steps in a machine-readable
//! `STEPS="..."` line; this rule asserts the GitHub workflow invokes
//! every one of them — either individually (`check.sh <step>`, one CI
//! stage per gate step) or via the `check.sh all` umbrella. A gate step
//! that CI silently stops running is exactly the kind of rot this
//! workspace's audit exists to catch.

use crate::report::Finding;

/// Workspace-relative path of the gate script.
pub const CHECK_SH_PATH: &str = "scripts/check.sh";
/// Workspace-relative path of the CI workflow.
pub const WORKFLOW_PATH: &str = ".github/workflows/ci.yml";

/// Extracts the step list from the gate script's `STEPS="..."`
/// declaration (first match wins).
pub fn parse_steps(check_sh: &str) -> Option<Vec<String>> {
    for line in check_sh.lines() {
        if let Some(rest) = line.trim().strip_prefix("STEPS=\"") {
            if let Some(end) = rest.find('"') {
                return Some(
                    rest.get(..end)
                        .unwrap_or("")
                        .split_whitespace()
                        .map(str::to_string)
                        .collect(),
                );
            }
        }
    }
    None
}

/// True when `line` runs `check.sh` with `step` as its own shell word
/// (`./scripts/check.sh lint`, `bash scripts/check.sh all`, ...).
fn invokes(line: &str, step: &str) -> bool {
    let words: Vec<&str> = line.split_whitespace().collect();
    words
        .windows(2)
        .any(|w| matches!(w, [cmd, arg] if cmd.ends_with("check.sh") && *arg == step))
}

/// Checks gate/workflow agreement over the two files' contents (`None` =
/// file missing). Pure so the engine is unit-testable without a
/// filesystem.
pub fn check_workflow_gate(check_sh: Option<&str>, workflow: Option<&str>) -> Vec<Finding> {
    let finding = |path: &str, message: String| Finding {
        rule: "ci.workflow_gate",
        path: path.to_string(),
        line: 1,
        message,
        chain: Vec::new(),
    };
    let Some(check) = check_sh else {
        return vec![finding(
            CHECK_SH_PATH,
            "scripts/check.sh is missing — the repo gate has no entry point".to_string(),
        )];
    };
    let Some(steps) = parse_steps(check) else {
        return vec![finding(
            CHECK_SH_PATH,
            "no STEPS=\"...\" declaration — ci.workflow_gate cannot verify the workflow"
                .to_string(),
        )];
    };
    if steps.is_empty() {
        return vec![finding(
            CHECK_SH_PATH,
            "STEPS=\"...\" declaration is empty — the gate runs nothing".to_string(),
        )];
    }
    let Some(wf) = workflow else {
        return vec![finding(
            WORKFLOW_PATH,
            format!(
                "CI workflow missing — nothing runs the {} gate steps on push",
                steps.len()
            ),
        )];
    };
    let via_all = wf.lines().any(|l| invokes(l, "all"));
    let mut out = Vec::new();
    for step in &steps {
        if !via_all && !wf.lines().any(|l| invokes(l, step)) {
            out.push(finding(
                WORKFLOW_PATH,
                format!(
                    "workflow never invokes `check.sh {step}` (and has no `check.sh all` \
                     umbrella) — gate and CI have drifted apart"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GATE: &str = "#!/usr/bin/env bash\nSTEPS=\"fmt lint audit build test smoke fuzz\"\n";

    #[test]
    fn missing_files_are_findings() {
        let f = check_workflow_gate(None, None);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].path, CHECK_SH_PATH);
        let f = check_workflow_gate(Some(GATE), None);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].path, WORKFLOW_PATH);
    }

    #[test]
    fn per_step_invocations_satisfy_the_gate() {
        let wf = "jobs:\n  - run: ./scripts/check.sh fmt\n  - run: ./scripts/check.sh lint\n\
                  \n  - run: ./scripts/check.sh audit\n  - run: ./scripts/check.sh build\n\
                  \n  - run: ./scripts/check.sh test\n  - run: ./scripts/check.sh smoke\n\
                  \n  - run: ./scripts/check.sh fuzz\n";
        assert!(check_workflow_gate(Some(GATE), Some(wf)).is_empty());
    }

    #[test]
    fn the_all_umbrella_satisfies_every_step() {
        let wf = "  - run: bash scripts/check.sh all\n";
        assert!(check_workflow_gate(Some(GATE), Some(wf)).is_empty());
    }

    #[test]
    fn a_dropped_step_is_reported_by_name() {
        let wf = "  - run: ./scripts/check.sh fmt\n  - run: ./scripts/check.sh lint\n\
                  \n  - run: ./scripts/check.sh audit\n  - run: ./scripts/check.sh build\n\
                  \n  - run: ./scripts/check.sh test\n  - run: ./scripts/check.sh smoke\n";
        let f = check_workflow_gate(Some(GATE), Some(wf));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("check.sh fuzz"), "{}", f[0].message);
    }

    #[test]
    fn substring_matches_do_not_count() {
        // `check.sh fuzzier` must not satisfy the `fuzz` step.
        let gate = "STEPS=\"fuzz\"\n";
        let wf = "  - run: ./scripts/check.sh fuzzier\n";
        assert_eq!(check_workflow_gate(Some(gate), Some(wf)).len(), 1);
        // ...and a mention without check.sh does not count either.
        assert_eq!(
            check_workflow_gate(Some(gate), Some("echo fuzz\n")).len(),
            1
        );
    }

    #[test]
    fn steps_parse_from_the_declaration() {
        assert_eq!(
            parse_steps(GATE).as_deref(),
            Some(&["fmt", "lint", "audit", "build", "test", "smoke", "fuzz"].map(String::from)[..])
        );
        assert_eq!(parse_steps("no steps here\n"), None);
        assert_eq!(parse_steps("STEPS=\"\"\n").as_deref(), Some(&[][..]));
    }
}

#![forbid(unsafe_code)]
//! # edm-audit — workspace determinism & panic-hygiene static analyzer
//!
//! The repo's core contract is that every simulation run is
//! bit-identically replayable (checkpoint/restore, the determinism
//! digest). This crate turns that contract from a convention into an
//! enforced invariant: it tokenizes every `.rs` file in the workspace
//! with a small hand-rolled lexer and runs a rule engine over the token
//! stream, flagging the classic determinism killers (hash-map
//! iteration in simulation state, wall-clock reads, ambient RNG),
//! panic-hygiene violations, lossy numeric patterns in wear accounting,
//! and `Snapshot` impls whose save/load paths drift apart.
//!
//! Findings are suppressible only via an inline pragma with a mandatory
//! reason:
//!
//! ```text
//! // edm-audit: allow(det.map_iter, "keys are sorted before use")
//! ```
//!
//! The binary prints a deterministic, path-sorted report and exits
//! nonzero on any unsuppressed finding; `--fix-report` emits a JSON
//! summary of rule counts per crate. Rule ids and rationale: DESIGN.md
//! §8. The `vendor/` stand-ins are deliberately out of scope — they
//! model *external* crates.

pub mod ast;
pub mod ci;
mod conc;
mod lexer;
pub mod parse;
mod pragma;
mod report;
mod rules;
mod source;
pub mod symgraph;
mod taint;
mod units;

pub use ci::check_workflow_gate;
pub use lexer::{lex, TokKind, Token};
pub use pragma::{parse_pragmas, Pragma, PragmaError};
pub use report::{AuditOutcome, Finding, Suppressed};
pub use rules::{rule_exists, RULES};
pub use source::{FileKind, SourceFile};
pub use symgraph::SymGraph;

use std::path::{Path, PathBuf};

/// Audits a set of already-loaded files (workspace-relative path,
/// source). Pure: the unit under test for the whole engine.
pub fn audit_sources(files: Vec<(String, String)>) -> AuditOutcome {
    let mut files: Vec<SourceFile> = files
        .into_iter()
        .map(|(rel, src)| SourceFile::new(rel, src))
        .collect();
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));

    // Pass A: struct shapes, workspace-wide (field coverage needs them).
    let mut table = rules::StructTable::new();
    for f in &files {
        rules::collect_structs(f, &mut table);
    }

    let mut raw: Vec<Finding> = Vec::new();
    for f in &files {
        rules::check_file(f, &mut raw);
        rules::check_snapshot_coverage(f, &table, &mut raw);
        rules::check_forbid_unsafe(f, &mut raw);
    }
    // Workspace-level: the edm-spec transition function must match every
    // journal Event variant (needs both crates' sources at once), and
    // the deterministic core must stay inside its frozen det.* pragma
    // budget (needs every crate's pragmas at once).
    rules::check_spec_event_coverage(&files, &mut raw);
    rules::check_suppression_budget(&files, &mut raw);

    // Semantic passes: the workspace symbol graph feeds the
    // interprocedural rules (det.taint, conc.*, unit.*).
    raw.append(&mut semantic_findings(&files));

    // Suppression: a pragma silences findings of its rule on its target
    // line. Pragma problems are findings themselves and cannot be
    // suppressed.
    let mut outcome = AuditOutcome {
        files_scanned: files.len(),
        ..AuditOutcome::default()
    };
    for f in &files {
        for e in &f.pragma_errors {
            outcome.findings.push(Finding {
                rule: "pragma.malformed",
                path: f.rel_path.clone(),
                line: e.line,
                message: e.detail.clone(),
                chain: Vec::new(),
            });
        }
        for p in &f.pragmas {
            if !rule_exists(&p.rule) {
                outcome.findings.push(Finding {
                    rule: "pragma.unknown_rule",
                    path: f.rel_path.clone(),
                    line: p.line,
                    message: format!("no rule named `{}` (see edm-audit --list-rules)", p.rule),
                    chain: Vec::new(),
                });
            }
        }
    }
    let mut pragma_hits = vec![0usize; files.iter().map(|f| f.pragmas.len()).sum()];
    let mut pragma_index = Vec::new(); // (path, &pragma, global idx)
    {
        let mut g = 0;
        for f in &files {
            for p in &f.pragmas {
                pragma_index.push((f.rel_path.clone(), p.clone(), g));
                g += 1;
            }
        }
    }
    for finding in raw {
        let hit = pragma_index.iter().find(|(path, p, _)| {
            *path == finding.path
                && p.rule == finding.rule
                && p.target_line == finding.line
                && rule_exists(&p.rule)
        });
        match hit {
            Some((_, p, g)) => {
                pragma_hits[*g] += 1;
                outcome.suppressed.push(Suppressed {
                    finding,
                    reason: p.reason.clone(),
                });
            }
            None => outcome.findings.push(finding),
        }
    }
    for (path, p, g) in &pragma_index {
        if pragma_hits[*g] == 0 && rule_exists(&p.rule) {
            outcome.findings.push(Finding {
                rule: "pragma.unused",
                path: path.clone(),
                line: p.line,
                message: format!(
                    "pragma allows `{}` but suppressed nothing on line {}",
                    p.rule, p.target_line
                ),
                chain: Vec::new(),
            });
        }
    }
    outcome.sort();
    outcome
}

/// Runs only the semantic passes — symbol-graph construction plus the
/// interprocedural rules (`det.taint`, `conc.lock_order`,
/// `conc.shared_state`, `unit.time`, `unit.wear`) — over
/// already-loaded files. Public so `edm-perf` can time exactly this
/// unit as the `audit_semantic` bench cell.
pub fn semantic_findings(files: &[SourceFile]) -> Vec<Finding> {
    let graph = SymGraph::build(files);
    let mut raw = Vec::new();
    taint::check_taint(&graph, &mut raw);
    conc::check_conc(&graph, &mut raw);
    units::check_units(&graph, &mut raw);
    raw
}

/// Loads (lexes, parses, classifies) every auditable `.rs` file under
/// `root` without running any rules.
pub fn load_workspace_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            std::fs::read_to_string(&p).map(|src| SourceFile::new(rel, src))
        })
        .collect()
}

/// Audits the workspace rooted at `root`: every `.rs` file under
/// `crates/`, `tests/`, and `examples/` (the `vendor/` stand-ins model
/// external crates and are out of scope; `target/` is build output).
pub fn audit_workspace(root: &Path) -> std::io::Result<AuditOutcome> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    let loaded = files
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            std::fs::read_to_string(&p).map(|src| (rel, src))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    let mut outcome = audit_sources(loaded);
    // Non-.rs gate files: the CI workflow must invoke every check.sh
    // step (ci.workflow_gate). Not pragma-suppressible — there is no
    // Rust source line to hang a pragma on, and drift here should hurt.
    let check_sh = std::fs::read_to_string(root.join(ci::CHECK_SH_PATH)).ok();
    let workflow = std::fs::read_to_string(root.join(ci::WORKFLOW_PATH)).ok();
    outcome.findings.extend(ci::check_workflow_gate(
        check_sh.as_deref(),
        workflow.as_deref(),
    ));
    outcome.sort();
    Ok(outcome)
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — the scan root when none is given.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

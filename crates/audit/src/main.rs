#![forbid(unsafe_code)]
//! `edm-audit` — scan the workspace, print the findings report, exit
//! nonzero on any unsuppressed finding.
//!
//! ```text
//! edm-audit [--root <dir>] [--fix-report [<path>]] [--list-rules]
//! ```
//!
//! With no `--root`, the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` with a `[workspace]`
//! table.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut fix_report: Option<Option<PathBuf>> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--fix-report" => {
                // Optional path operand; default is stdout.
                let path = args
                    .peek()
                    .filter(|a| !a.starts_with("--"))
                    .map(PathBuf::from);
                if path.is_some() {
                    args.next();
                }
                fix_report = Some(path);
            }
            "--list-rules" => {
                for (id, desc) in edm_audit::RULES {
                    println!("{id:24} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("edm-audit: cannot read current directory: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match edm_audit::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("edm-audit: no workspace root found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let outcome = match edm_audit::audit_workspace(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("edm-audit: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match fix_report {
        Some(Some(path)) => {
            if let Err(e) = std::fs::write(&path, outcome.render_json()) {
                eprintln!("edm-audit: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprint!("{}", outcome.render_text());
        }
        Some(None) => print!("{}", outcome.render_json()),
        None => print!("{}", outcome.render_text()),
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("edm-audit: {err}");
    }
    eprintln!("usage: edm-audit [--root <dir>] [--fix-report [<path>]] [--list-rules]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

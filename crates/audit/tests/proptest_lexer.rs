//! Property tests for the lexer's totality contract: any input — valid
//! Rust or byte soup — lexes without panicking, and the resulting spans
//! are strictly monotonic, non-overlapping, in-bounds, and UTF-8
//! sliceable. The audit engine itself must also never panic on
//! arbitrary input, since it runs on work-in-progress source trees.

use proptest::prelude::*;

use edm_audit::{audit_sources, lex, parse_pragmas, TokKind};

/// Strings biased toward lexer trouble: quote characters, comment
/// openers, raw-string fences, backslashes, newlines, and multi-byte
/// UTF-8 — plus plain alphanumerics to form identifiers around them.
fn trouble_string() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("\"".to_string()),
            Just("'".to_string()),
            Just("//".to_string()),
            Just("/*".to_string()),
            Just("*/".to_string()),
            Just("r#".to_string()),
            Just("br##\"".to_string()),
            Just("\\".to_string()),
            Just("\n".to_string()),
            Just("é漢".to_string()),
            Just("b'".to_string()),
            Just("0x".to_string()),
            Just("1e".to_string()),
            Just("..".to_string()),
            (0u8..26, 1usize..4).prop_map(|(c, n)| ((b'a' + c) as char).to_string().repeat(n)),
            Just(" ".to_string()),
        ],
        0..64,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lex_never_panics_and_spans_are_sound(src in trouble_string()) {
        let toks = lex(&src);
        let mut prev_end = 0usize;
        for t in &toks {
            prop_assert!(t.start >= prev_end, "overlapping/backwards span");
            prop_assert!(t.end > t.start, "empty span");
            prop_assert!(t.end <= src.len(), "span past end of input");
            // Spans must land on char boundaries so text() can't panic.
            prop_assert!(src.is_char_boundary(t.start));
            prop_assert!(src.is_char_boundary(t.end));
            let _ = t.text(&src);
            prev_end = t.end;
        }
        // Bytes between tokens are whitespace only: nothing is dropped.
        let mut cursor = 0usize;
        for t in &toks {
            prop_assert!(src[cursor..t.start].chars().all(char::is_whitespace));
            cursor = t.end;
        }
        prop_assert!(src[cursor..].chars().all(char::is_whitespace));
    }

    #[test]
    fn token_lines_are_monotonic(src in trouble_string()) {
        let toks = lex(&src);
        let mut prev = 1u32;
        for t in &toks {
            prop_assert!(t.line >= prev, "line numbers must not decrease");
            prev = t.line;
        }
    }

    #[test]
    fn pragma_parse_never_panics(src in trouble_string()) {
        let toks = lex(&src);
        let _ = parse_pragmas(&src, &toks);
    }

    #[test]
    fn full_audit_never_panics_on_soup(src in trouble_string()) {
        // Run the soup through every rule path, including the
        // snapshot-coverage struct collector and crate-root check.
        let out = audit_sources(vec![("crates/ssd/src/lib.rs".to_string(), src)]);
        let _ = out.render_text();
        let _ = out.render_json();
    }

    #[test]
    fn comments_and_strings_never_leak_tokens(
        bytes in prop::collection::vec(32u8..127, 0..24)
    ) {
        // Whatever printable junk sits inside a string or comment, it
        // must stay a single Str/comment token.
        let reason = String::from_utf8(bytes).expect("printable ASCII");
        let src = format!("let s = \"{}\";", reason.replace(['\\', '"'], ""));
        let toks = lex(&src);
        let strs = toks.iter().filter(|t| t.kind == TokKind::Str).count();
        prop_assert_eq!(strs, 1, "{}", src);
    }
}

//! End-to-end rule-engine tests over synthetic workspaces fed through
//! `audit_sources`: each determinism/panic/numeric/snapshot rule fires
//! on a seeded violation with the right id, scoping exempts the right
//! file kinds, and the suppression pragma machinery (unknown rule,
//! unused pragma) behaves.

use edm_audit::{audit_sources, AuditOutcome};

fn audit(files: &[(&str, &str)]) -> AuditOutcome {
    audit_sources(
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect(),
    )
}

fn rules_of(outcome: &AuditOutcome) -> Vec<&str> {
    outcome.findings.iter().map(|f| f.rule).collect()
}

const LIB_OK: &str = "#![forbid(unsafe_code)]\npub fn ok() {}\n";

#[test]
fn hashmap_for_loop_in_sim_state_crate_fires() {
    let src = "\
#![forbid(unsafe_code)]
use std::collections::HashMap;
pub fn f() {
    let m: HashMap<u64, u64> = HashMap::new();
    for (k, v) in &m {
        let _ = (k, v);
    }
}
";
    let out = audit(&[("crates/cluster/src/lib.rs", src)]);
    assert_eq!(rules_of(&out), vec!["det.map_iter"], "{out:?}");
    assert_eq!(out.findings[0].line, 5);
}

#[test]
fn hashmap_values_iteration_fires_and_btreemap_does_not() {
    let hash = "\
#![forbid(unsafe_code)]
use std::collections::HashMap;
pub fn f(m: &HashMap<u64, u64>) -> Vec<u64> { m.values().copied().collect() }
";
    let btree = "\
#![forbid(unsafe_code)]
use std::collections::BTreeMap;
pub fn f(m: &BTreeMap<u64, u64>) -> Vec<u64> { m.values().copied().collect() }
";
    assert_eq!(
        rules_of(&audit(&[("crates/core/src/lib.rs", hash)])),
        vec!["det.map_iter"]
    );
    assert!(audit(&[("crates/core/src/lib.rs", btree)]).is_clean());
}

#[test]
fn map_iter_is_scoped_to_sim_state_crates() {
    let src = "\
#![forbid(unsafe_code)]
use std::collections::HashMap;
pub fn f(m: &HashMap<u64, u64>) -> Vec<u64> { m.values().copied().collect() }
";
    // Same code in a non-sim-state crate (obs) passes.
    assert!(audit(&[("crates/obs/src/lib.rs", src)]).is_clean());
}

#[test]
fn wallclock_and_rng_fire_in_lib_but_not_harness_bin() {
    let src = "\
#![forbid(unsafe_code)]
pub fn f() {
    let t = std::time::Instant::now();
    let r = rand::thread_rng();
    let _ = (t, r);
}
";
    let out = audit(&[("crates/ssd/src/clock.rs", src)]);
    assert_eq!(rules_of(&out), vec!["det.wallclock", "det.ambient_rng"]);

    let bin = "\
fn main() {
    let t = std::time::Instant::now();
    let _ = t;
}
";
    assert!(audit(&[("crates/harness/src/bin/edm-x.rs", bin)]).is_clean());
}

#[test]
fn thread_order_fires_on_spawn_and_aggregation_primitives() {
    let src = "\
#![forbid(unsafe_code)]
use std::sync::Mutex;
pub fn f() {
    let agg = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        s.spawn(|| agg.lock().unwrap().push(1u64));
    });
}
";
    let out = audit(&[("crates/cluster/src/par.rs", src)]);
    let rules = rules_of(&out);
    assert!(
        rules.iter().filter(|r| **r == "det.thread_order").count() >= 2,
        "Mutex and spawn must both fire: {out:?}"
    );
    // Same code outside the sim-state crates (harness lib) passes.
    assert!(!rules_of(&audit(&[("crates/harness/src/par.rs", src)])).contains(&"det.thread_order"));
}

#[test]
fn thread_order_pragma_documents_the_join_discipline() {
    let src = "\
#![forbid(unsafe_code)]
pub fn f(slots: &mut [u64]) {
    std::thread::scope(|s| {
        for slot in slots.iter_mut() {
            // edm-audit: allow(det.thread_order, \"disjoint &mut slots read back in index order\")
            s.spawn(move || *slot += 1);
        }
    });
}
";
    assert!(
        audit(&[("crates/cluster/src/par.rs", src)]).is_clean(),
        "{:?}",
        audit(&[("crates/cluster/src/par.rs", src)])
    );
}

#[test]
fn thread_order_covers_the_serve_daemon_lib_and_bin() {
    let src = "\
#![forbid(unsafe_code)]
use std::sync::Mutex;
pub fn f() {
    let agg = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        s.spawn(|| agg.lock().unwrap().push(1u64));
    });
}
";
    for path in [
        "crates/serve/src/server.rs",
        "crates/serve/src/bin/edm-serve.rs",
    ] {
        let out = audit(&[(path, src)]);
        assert!(
            rules_of(&out).contains(&"det.thread_order"),
            "{path} must be in det.thread_order scope: {out:?}"
        );
    }
    // A pragma arguing scheduler-independence suppresses it there too.
    let suppressed = "\
#![forbid(unsafe_code)]
pub fn f() {
    // edm-audit: allow(det.thread_order, \"server thread shares only the control block\")
    std::thread::spawn(|| {});
}
";
    let out = audit(&[("crates/serve/src/server.rs", suppressed)]);
    assert!(out.is_clean(), "{out:?}");
}

#[test]
fn suppression_budget_fires_when_a_core_crate_grows_a_det_pragma() {
    // `ssd` has a frozen budget of zero: one reasoned (and otherwise
    // legitimate) det.* suppression is one too many.
    let src = "\
#![forbid(unsafe_code)]
pub fn f() -> Option<String> {
    // edm-audit: allow(det.env_read, \"plausible-sounding excuse\")
    std::env::var(\"SEED\").ok()
}
";
    let out = audit(&[("crates/ssd/src/lib.rs", src)]);
    let rules = rules_of(&out);
    assert!(
        rules.contains(&"det.suppression_budget"),
        "over-budget crate must fire: {out:?}"
    );
    // The same pragma in an unbudgeted tooling crate draws no finding.
    let out = audit(&[("crates/harness/src/runner.rs", src)]);
    assert!(
        !rules_of(&out).contains(&"det.suppression_budget"),
        "tooling crates are unbudgeted: {out:?}"
    );
}

#[test]
fn suppression_budget_accepts_a_crate_at_its_frozen_allowance() {
    // `workload` has a budget of one: a single suppressed det finding
    // is within allowance and the audit stays clean.
    let src = "\
#![forbid(unsafe_code)]
pub fn f() -> Option<String> {
    // edm-audit: allow(det.env_read, \"documented escape within budget\")
    std::env::var(\"SEED\").ok()
}
";
    let out = audit(&[("crates/workload/src/cfg.rs", src)]);
    assert!(out.is_clean(), "{out:?}");
}

#[test]
fn env_read_fires_outside_the_harness() {
    let src = "\
#![forbid(unsafe_code)]
pub fn f() -> Option<String> { std::env::var(\"SEED\").ok() }
";
    assert_eq!(
        rules_of(&audit(&[("crates/workload/src/cfg.rs", src)])),
        vec!["det.env_read"]
    );
}

#[test]
fn panic_rules_fire_in_lib_code_with_correct_ids() {
    let src = "\
#![forbid(unsafe_code)]
pub fn f(v: &[u64], o: Option<u64>) -> u64 {
    let a = o.unwrap();
    let b = o.expect(\"set\");
    if a == 0 { panic!(\"boom\") }
    if b == 1 { unreachable!() }
    v[0]
}
";
    let out = audit(&[("crates/snap/src/x.rs", src)]);
    assert_eq!(
        rules_of(&out),
        vec![
            "panic.unwrap",
            "panic.expect",
            "panic.panic",
            "panic.unreachable",
            "panic.slice_index"
        ]
    );
}

#[test]
fn panic_rules_skip_tests_benches_and_cfg_test_modules() {
    let test_code = "pub fn f(o: Option<u64>) -> u64 { o.unwrap() }\n";
    assert!(audit(&[("crates/snap/tests/t.rs", test_code)]).is_clean());
    assert!(audit(&[("crates/bench/benches/b.rs", test_code)]).is_clean());

    let lib_with_test_mod = "\
#![forbid(unsafe_code)]
pub fn ok() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1u64).unwrap();
    }
}
";
    assert!(audit(&[("crates/snap/src/lib.rs", lib_with_test_mod)]).is_clean());
}

#[test]
fn numeric_rules_fire_only_in_wear_scoped_files() {
    let src = "\
#![forbid(unsafe_code)]
pub fn f(x: u64, y: f64) -> bool {
    let small = x as u32;
    small as f64 + y == 1.0
}
";
    let out = audit(&[("crates/ssd/src/wear.rs", src)]);
    assert_eq!(rules_of(&out), vec!["num.lossy_cast", "num.float_eq"]);
    // The same code outside the numeric scope is not flagged.
    assert!(audit(&[("crates/ssd/src/queue.rs", src)]).is_clean());
}

#[test]
fn snapshot_field_missing_from_load_fires() {
    let src = "\
#![forbid(unsafe_code)]
pub struct Wear {
    pub erases: u64,
    pub budget: u64,
}
impl Snapshot for Wear {
    fn save(&self, w: &mut SnapWriter) {
        self.erases.save(w);
        self.budget.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        Wear { erases: u64::load(r), budget: 0 }
    }
}
";
    // `budget` appears in load as a field name, so seed a real drift:
    let drifted = src
        .replace("budget: 0", "b: 0")
        .replace("Wear { erases", "Self { erases");
    let out = audit(&[("crates/ssd/src/w.rs", drifted.as_str())]);
    assert_eq!(rules_of(&out), vec!["snap.field_coverage"], "{out:?}");
    assert!(out.findings[0].message.contains("budget"), "{out:?}");
    // The faithful impl is clean.
    assert!(audit(&[("crates/ssd/src/w.rs", src)]).is_clean());
}

#[test]
fn missing_forbid_unsafe_in_crate_root_fires() {
    let out = audit(&[("crates/core/src/lib.rs", "pub fn ok() {}\n")]);
    assert_eq!(rules_of(&out), vec!["unsafe.forbid_missing"]);
    assert!(audit(&[("crates/core/src/lib.rs", LIB_OK)]).is_clean());
}

#[test]
fn pragma_suppresses_exactly_its_rule_on_its_line() {
    let src = "\
#![forbid(unsafe_code)]
pub fn f(o: Option<u64>) -> u64 {
    // edm-audit: allow(panic.unwrap, \"value set by constructor\")
    o.unwrap()
}
";
    let out = audit(&[("crates/snap/src/x.rs", src)]);
    assert!(out.is_clean(), "{out:?}");
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].finding.rule, "panic.unwrap");
    assert_eq!(out.suppressed[0].reason, "value set by constructor");
}

#[test]
fn pragma_for_the_wrong_rule_does_not_suppress() {
    let src = "\
#![forbid(unsafe_code)]
pub fn f(o: Option<u64>) -> u64 {
    // edm-audit: allow(panic.expect, \"wrong rule\")
    o.unwrap()
}
";
    let out = audit(&[("crates/snap/src/x.rs", src)]);
    let mut rules = rules_of(&out);
    rules.sort_unstable();
    // The unwrap stays open and the pragma reports as unused.
    assert_eq!(rules, vec!["panic.unwrap", "pragma.unused"]);
}

#[test]
fn unknown_rule_and_unused_pragma_are_findings() {
    let src = "\
#![forbid(unsafe_code)]
// edm-audit: allow(det.nonexistent, \"typo'd rule id\")
pub fn ok() {}
// edm-audit: allow(panic.unwrap, \"nothing here unwraps\")
pub fn also_ok() {}
";
    let out = audit(&[("crates/obs/src/x.rs", src)]);
    let mut rules = rules_of(&out);
    rules.sort_unstable();
    assert_eq!(rules, vec!["pragma.unknown_rule", "pragma.unused"]);
}

#[test]
fn report_is_sorted_and_renders_deterministically() {
    let bad = "\
#![forbid(unsafe_code)]
pub fn f(o: Option<u64>) -> u64 { o.unwrap() }
";
    // Feed files out of order; findings must come back path-sorted.
    let out = audit(&[
        ("crates/ssd/src/z.rs", bad),
        ("crates/cluster/src/a.rs", bad),
    ]);
    let paths: Vec<&str> = out.findings.iter().map(|f| f.path.as_str()).collect();
    let mut sorted = paths.clone();
    sorted.sort_unstable();
    assert_eq!(paths, sorted);

    let text = out.render_text();
    assert!(
        text.contains("crates/cluster/src/a.rs:2: [panic.unwrap]"),
        "{text}"
    );
    let json = out.render_json();
    assert!(json.contains("\"open\""), "{json}");
    // Rendering twice is byte-identical (no ambient state).
    assert_eq!(json, out.render_json());
}

#[test]
fn spec_event_coverage_fires_on_an_unmatched_variant() {
    let event_decl = "\
#![forbid(unsafe_code)]
pub enum Event {
    RunMeta { osds: u32 },
    BlockErase { block: u64, erase_count: u64 },
    QueueDepth { osd: u32, depth: u64 },
}
";
    let spec_partial = "\
#![forbid(unsafe_code)]
pub fn step(ev: &Event) {
    match ev {
        Event::RunMeta { .. } => {}
        Event::BlockErase { .. } => {}
        _ => {}
    }
}
";
    let out = audit(&[
        ("crates/obs/src/event.rs", event_decl),
        ("crates/spec/src/lib.rs", spec_partial),
    ]);
    assert_eq!(rules_of(&out), vec!["spec.event_coverage"], "{out:?}");
    assert_eq!(out.findings[0].path, "crates/obs/src/event.rs");
    assert_eq!(
        out.findings[0].line, 5,
        "should point at the QueueDepth variant"
    );
    assert!(
        out.findings[0].message.contains("Event::QueueDepth"),
        "{}",
        out.findings[0].message
    );
}

#[test]
fn spec_event_coverage_is_satisfied_by_full_matching() {
    let event_decl = "\
#![forbid(unsafe_code)]
pub enum Event {
    RunMeta { osds: u32 },
    QueueDepth { osd: u32, depth: u64 },
}
";
    let spec_full = "\
#![forbid(unsafe_code)]
pub fn step(ev: &Event) {
    match ev {
        Event::RunMeta { .. } => {}
        Event::QueueDepth { .. } => {}
    }
}
";
    assert!(audit(&[
        ("crates/obs/src/event.rs", event_decl),
        ("crates/spec/src/lib.rs", spec_full),
    ])
    .is_clean());
    // Without any spec sources the rule stays silent (synthetic
    // workspaces in other tests must not all fail it).
    assert!(audit(&[("crates/obs/src/event.rs", event_decl)]).is_clean());
}

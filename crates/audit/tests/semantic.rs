//! Engine tests for the semantic rule families (det.taint,
//! conc.lock_order, conc.shared_state, unit.time, unit.wear): each
//! seeded violation from the acceptance fixtures is rejected with a
//! chain-bearing finding, and the matching clean shapes stay silent.

use edm_audit::{audit_sources, AuditOutcome, Finding};

fn audit(files: &[(&str, &str)]) -> AuditOutcome {
    audit_sources(
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect(),
    )
}

fn rules_of(outcome: &AuditOutcome) -> Vec<&str> {
    outcome.findings.iter().map(|f| f.rule).collect()
}

fn findings_for<'a>(outcome: &'a AuditOutcome, rule: &str) -> Vec<&'a Finding> {
    outcome.findings.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------- det.taint

#[test]
fn wallclock_assigned_to_sim_state_field_fires_with_chain() {
    let src = "\
#![forbid(unsafe_code)]
pub struct Engine {
    pub t_us: u64,
}
impl Engine {
    pub fn stamp(&mut self) {
        let now = std::time::Instant::now();
        self.t_us = now;
    }
}
";
    let out = audit(&[("crates/cluster/src/lib.rs", src)]);
    let taints = findings_for(&out, "det.taint");
    assert_eq!(taints.len(), 1, "{out:?}");
    let f = taints[0];
    assert_eq!(f.line, 8);
    assert!(f
        .message
        .contains("nondeterministic value reaches a determinism sink"));
    // Full source→sink chain: source, binding, sink.
    assert!(f.chain.len() >= 3, "{:?}", f.chain);
    assert!(f.chain[0].contains("wall-clock read"), "{:?}", f.chain);
    assert!(
        f.chain
            .last()
            .unwrap()
            .contains("sim-state field `self.t_us`"),
        "{:?}",
        f.chain
    );
    // The chain is rendered in both report formats.
    assert!(out.render_text().contains("-> "));
    assert!(out.render_json().contains("\"chain\""));
}

#[test]
fn taint_flows_interprocedurally_through_helper_and_setter() {
    // Source in a free fn, returned; routed through a setter whose
    // parameter feeds the sink. Requires both fn summaries to converge.
    let src = "\
#![forbid(unsafe_code)]
pub struct Engine {
    pub t_us: u64,
}
fn wall_us() -> u64 {
    let t = std::time::Instant::now();
    let us = t.elapsed().as_micros() as u64;
    us
}
impl Engine {
    pub fn set_time(&mut self, t: u64) {
        self.t_us = t;
    }
    pub fn step(&mut self) {
        let w = wall_us();
        self.set_time(w);
    }
}
";
    let out = audit(&[("crates/cluster/src/lib.rs", src)]);
    let taints = findings_for(&out, "det.taint");
    assert_eq!(taints.len(), 1, "{out:?}");
    let f = taints[0];
    // Reported at the call into the setter, inside `step`.
    assert_eq!(f.line, 16, "{f:?}");
    assert!(f.chain[0].contains("wall-clock read"), "{:?}", f.chain);
    let joined = f.chain.join("\n");
    assert!(joined.contains("returned by `wall_us()`"), "{joined}");
    assert!(joined.contains("passes into `set_time(…)`"), "{joined}");
    assert!(joined.contains("sim-state field `self.t_us`"), "{joined}");
}

#[test]
fn rng_feeding_recorder_method_fires_journal_sink() {
    let src = "\
#![forbid(unsafe_code)]
pub struct Recorder;
pub fn record(rec: &mut Recorder) {
    let seed = rand::thread_rng();
    rec.event(seed);
}
";
    let out = audit(&[("crates/obs/src/lib.rs", src)]);
    let taints = findings_for(&out, "det.taint");
    assert_eq!(taints.len(), 1, "{out:?}");
    assert!(
        taints[0].chain[0].contains("ambient RNG"),
        "{:?}",
        taints[0].chain
    );
    assert!(
        taints[0]
            .chain
            .last()
            .unwrap()
            .contains("feeds the journal via `.event(…)`"),
        "{:?}",
        taints[0].chain
    );
}

#[test]
fn deterministic_parameter_into_sim_state_is_clean() {
    let src = "\
#![forbid(unsafe_code)]
pub struct Engine {
    pub t_us: u64,
}
impl Engine {
    pub fn advance(&mut self, dt_us: u64) {
        self.t_us = dt_us;
    }
}
";
    let out = audit(&[("crates/cluster/src/lib.rs", src)]);
    assert!(out.is_clean(), "{out:?}");
}

// ---------------------------------------------------------- conc.lock_order

#[test]
fn reversed_lock_pair_fires_both_witnesses_with_chains() {
    let src = "\
#![forbid(unsafe_code)]
use std::sync::Mutex;
pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}
impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock().expect(\"a\");
        let gb = self.b.lock().expect(\"b\");
        *ga + *gb
    }
    pub fn backward(&self) -> u64 {
        let gb = self.b.lock().expect(\"b\");
        let ga = self.a.lock().expect(\"a\");
        *ga + *gb
    }
}
";
    let out = audit(&[("crates/serve/src/lib.rs", src)]);
    let orders = findings_for(&out, "conc.lock_order");
    // One finding per witness site — both directions of the cycle.
    assert_eq!(orders.len(), 2, "{out:?}");
    for f in &orders {
        assert!(f.message.contains("inconsistent lock order"), "{f:?}");
        assert_eq!(f.chain.len(), 2, "{:?}", f.chain);
        assert!(
            f.chain
                .iter()
                .any(|s| s.contains("`Pair::a` then `Pair::b`")),
            "{:?}",
            f.chain
        );
        assert!(
            f.chain
                .iter()
                .any(|s| s.contains("`Pair::b` then `Pair::a`")),
            "{:?}",
            f.chain
        );
    }
    let lines: Vec<u32> = orders.iter().map(|f| f.line).collect();
    assert!(lines.contains(&10) && lines.contains(&15), "{lines:?}");
}

#[test]
fn consistent_lock_order_is_silent() {
    let src = "\
#![forbid(unsafe_code)]
use std::sync::Mutex;
pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}
impl Pair {
    pub fn one(&self) -> u64 {
        let ga = self.a.lock().expect(\"a\");
        let gb = self.b.lock().expect(\"b\");
        *ga + *gb
    }
    pub fn two(&self) -> u64 {
        let ga = self.a.lock().expect(\"a\");
        let gb = self.b.lock().expect(\"b\");
        *ga * *gb
    }
}
";
    let out = audit(&[("crates/serve/src/lib.rs", src)]);
    assert!(findings_for(&out, "conc.lock_order").is_empty(), "{out:?}");
}

#[test]
fn blocking_recv_under_live_guard_fires() {
    let src = "\
#![forbid(unsafe_code)]
use std::sync::Mutex;
pub struct Q {
    inner: Mutex<u64>,
}
impl Q {
    pub fn drain(&self, rx: &std::sync::mpsc::Receiver<u64>) -> u64 {
        let g = self.inner.lock().expect(\"inner\");
        let v = rx.recv().unwrap_or(0);
        *g + v
    }
}
";
    let out = audit(&[("crates/serve/src/lib.rs", src)]);
    let orders = findings_for(&out, "conc.lock_order");
    assert_eq!(orders.len(), 1, "{out:?}");
    let f = orders[0];
    assert!(f.message.contains("held across blocking call"), "{f:?}");
    assert_eq!(f.line, 9);
    assert!(f.chain[0].contains("acquires `Q::inner`"), "{:?}", f.chain);
    assert!(f.chain[1].contains("blocks on"), "{:?}", f.chain);
}

#[test]
fn lock_alias_type_is_recognized() {
    // serve-style `type Lock<T> = Mutex<T>` — fields of the alias type
    // still count as locks for ordering.
    let src = "\
#![forbid(unsafe_code)]
use std::sync::Mutex;
type Lock<T> = Mutex<T>;
pub struct Pair {
    a: Lock<u64>,
    b: Lock<u64>,
}
impl Pair {
    pub fn forward(&self) {
        let ga = self.a.lock().expect(\"a\");
        let gb = self.b.lock().expect(\"b\");
        drop((ga, gb));
    }
    pub fn backward(&self) {
        let gb = self.b.lock().expect(\"b\");
        let ga = self.a.lock().expect(\"a\");
        drop((ga, gb));
    }
}
";
    let out = audit(&[("crates/serve/src/lib.rs", src)]);
    assert_eq!(findings_for(&out, "conc.lock_order").len(), 2, "{out:?}");
}

// -------------------------------------------------------- conc.shared_state

#[test]
fn rc_local_captured_by_spawn_fires() {
    let src = "\
#![forbid(unsafe_code)]
pub fn share() {
    let shared = std::rc::Rc::new(0u64);
    std::thread::spawn(move || {
        let _ = shared.clone();
    });
}
";
    let out = audit(&[("crates/serve/src/lib.rs", src)]);
    let shared = findings_for(&out, "conc.shared_state");
    assert_eq!(shared.len(), 1, "{out:?}");
    assert!(
        shared[0].message.contains("non-Sync `Rc` value `shared`"),
        "{:?}",
        shared[0]
    );
    assert!(!shared[0].chain.is_empty());
}

#[test]
fn refcell_field_captured_by_spawn_fires() {
    let src = "\
#![forbid(unsafe_code)]
pub struct W {
    cache: std::cell::RefCell<u64>,
}
impl W {
    pub fn go(&self) {
        std::thread::spawn(move || {
            let _ = self.cache.borrow();
        });
    }
}
";
    let out = audit(&[("crates/serve/src/lib.rs", src)]);
    let shared = findings_for(&out, "conc.shared_state");
    assert_eq!(shared.len(), 1, "{out:?}");
    assert!(shared[0].message.contains("`W::cache`"), "{:?}", shared[0]);
}

#[test]
fn arc_local_captured_by_spawn_is_clean() {
    let src = "\
#![forbid(unsafe_code)]
pub fn share() {
    let shared = std::sync::Arc::new(0u64);
    std::thread::spawn(move || {
        let _ = shared.clone();
    });
}
";
    let out = audit(&[("crates/serve/src/lib.rs", src)]);
    assert!(
        findings_for(&out, "conc.shared_state").is_empty(),
        "{out:?}"
    );
}

// ------------------------------------------------------- unit.time / wear

#[test]
fn time_plus_ticks_expression_fires_unit_time() {
    let src = "\
#![forbid(unsafe_code)]
pub fn deadline(t_us: u64, wear_ticks: u64) -> u64 {
    t_us + wear_ticks
}
";
    let out = audit(&[("crates/core/src/lib.rs", src)]);
    assert_eq!(rules_of(&out), vec!["unit.time"], "{out:?}");
    let f = &out.findings[0];
    assert_eq!(f.line, 3);
    assert!(f.message.contains("microseconds"), "{f:?}");
    assert!(f.message.contains("wear ticks"), "{f:?}");
    assert_eq!(f.chain.len(), 2, "{:?}", f.chain);
}

#[test]
fn ticks_argument_to_microseconds_parameter_fires() {
    let src = "\
#![forbid(unsafe_code)]
fn advance(now_us: u64) -> u64 {
    now_us
}
pub fn drive(ticks: u64) -> u64 {
    advance(ticks)
}
";
    let out = audit(&[("crates/core/src/lib.rs", src)]);
    assert_eq!(rules_of(&out), vec!["unit.time"], "{out:?}");
    let f = &out.findings[0];
    assert!(f.message.contains("`ticks`"), "{f:?}");
    assert!(f.message.contains("`now_us` parameter"), "{f:?}");
    // Chain points at both the call site and the parameter declaration.
    assert!(
        f.chain[1].contains("parameter `now_us` of `advance`"),
        "{:?}",
        f.chain
    );
}

#[test]
fn erases_vs_pages_comparison_fires_unit_wear() {
    let src = "\
#![forbid(unsafe_code)]
pub fn hot(total_erases: u64, hot_pages: u64) -> bool {
    total_erases > hot_pages
}
";
    let out = audit(&[("crates/ssd/src/lib.rs", src)]);
    assert_eq!(rules_of(&out), vec!["unit.wear"], "{out:?}");
}

#[test]
fn same_unit_arithmetic_and_scaling_are_clean() {
    let src = "\
#![forbid(unsafe_code)]
pub fn advance(t_us: u64, dt_us: u64) -> u64 {
    t_us + dt_us
}
pub fn scale(t_us: u64, ticks: u64) -> u64 {
    t_us * ticks
}
";
    let out = audit(&[("crates/core/src/lib.rs", src)]);
    assert!(out.is_clean(), "{out:?}");
}

#[test]
fn newtype_returning_call_absorbs_unit() {
    // `read_pages() + erase_blocks()` both return a named latency type:
    // the names carry units but the values do not.
    let src = "\
#![forbid(unsafe_code)]
pub struct DeviceTime(pub u64);
pub struct Model;
impl Model {
    fn read_pages(&self, n: u64) -> DeviceTime {
        DeviceTime(n)
    }
    fn erase_blocks(&self, n: u64) -> DeviceTime {
        DeviceTime(n)
    }
    pub fn gc_pass(&self, valid: u64) -> u64 {
        let t = self.read_pages(valid).0 + self.erase_blocks(1).0;
        t
    }
}
";
    let out = audit(&[("crates/ssd/src/lib.rs", src)]);
    assert!(
        findings_for(&out, "unit.wear").is_empty() && findings_for(&out, "unit.time").is_empty(),
        "{out:?}"
    );
}

// ----------------------------------------------------- suppression behavior

#[test]
fn semantic_findings_are_pragma_suppressible_and_budgeted() {
    let src = "\
#![forbid(unsafe_code)]
pub fn deadline(t_us: u64, wear_ticks: u64) -> u64 {
    // edm-audit: allow(unit.time, \"deadline is a dimensionless score here\")
    t_us + wear_ticks
}
";
    // workload has a det.*/conc.*/unit.* budget of 1: exactly consumed.
    let out = audit(&[("crates/workload/src/lib.rs", src)]);
    assert!(out.is_clean(), "{out:?}");
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].finding.rule, "unit.time");

    // The same pragma in a zero-budget crate blows the budget.
    let out = audit(&[("crates/core/src/lib.rs", src)]);
    assert_eq!(rules_of(&out), vec!["det.suppression_budget"], "{out:?}");
}

//! Lexer unit tests: the edges a grep-style checker gets wrong —
//! strings hiding `//`, raw-string fences, nested block comments, and
//! the char-literal-vs-lifetime split.

use edm_audit::{lex, TokKind};

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .iter()
        .map(|t| (t.kind, t.text(src).to_string()))
        .collect()
}

fn only(src: &str, kind: TokKind) -> Vec<String> {
    kinds(src)
        .into_iter()
        .filter(|(k, _)| *k == kind)
        .map(|(_, s)| s)
        .collect()
}

#[test]
fn string_hides_comment_and_quote() {
    let src = r#"let s = "not // a comment \" still string"; x"#;
    assert_eq!(
        only(src, TokKind::Str),
        vec![r#""not // a comment \" still string""#]
    );
    assert!(only(src, TokKind::LineComment).is_empty());
    assert_eq!(only(src, TokKind::Ident), vec!["let", "s", "x"]);
}

#[test]
fn raw_strings_with_fences() {
    let src = r###"let a = r"plain"; let b = r#"has " quote"#; let c = br##"x"# y"##;"###;
    assert_eq!(
        only(src, TokKind::Str),
        vec![
            r#"r"plain""#,
            r##"r#"has " quote"#"##,
            r###"br##"x"# y"##"###
        ]
    );
}

#[test]
fn raw_string_swallows_comment_marker() {
    let src = "let s = r#\"// edm-audit: allow(x, \"y\")\"#;";
    assert!(only(src, TokKind::LineComment).is_empty());
    assert_eq!(only(src, TokKind::Str).len(), 1);
}

#[test]
fn nested_block_comments() {
    let src = "a /* outer /* inner */ still comment */ b";
    assert_eq!(only(src, TokKind::Ident), vec!["a", "b"]);
    assert_eq!(
        only(src, TokKind::BlockComment),
        vec!["/* outer /* inner */ still comment */"]
    );
}

#[test]
fn unterminated_block_comment_reaches_eof() {
    let src = "a /* never closed";
    assert_eq!(only(src, TokKind::Ident), vec!["a"]);
    assert_eq!(only(src, TokKind::BlockComment), vec!["/* never closed"]);
}

#[test]
fn char_literal_vs_lifetime() {
    let src = "let c: char = 'x'; fn f<'a>(s: &'a str) { let n = '\\n'; let b = b'z'; }";
    assert_eq!(only(src, TokKind::Char), vec!["'x'", "'\\n'", "b'z'"]);
    assert_eq!(only(src, TokKind::Lifetime), vec!["'a", "'a"]);
}

#[test]
fn static_lifetime_is_not_a_char() {
    let src = "const S: &'static str = \"s\";";
    assert_eq!(only(src, TokKind::Lifetime), vec!["'static"]);
    assert!(only(src, TokKind::Char).is_empty());
}

#[test]
fn numbers_int_vs_float() {
    let src =
        "let a = 42; let b = 0xFFu64; let c = 0.5; let d = 1e-3; let e = 2.0f32; let f = 1_000;";
    assert_eq!(only(src, TokKind::Int), vec!["42", "0xFFu64", "1_000"]);
    assert_eq!(only(src, TokKind::Float), vec!["0.5", "1e-3", "2.0f32"]);
}

#[test]
fn range_is_not_a_float() {
    // `0..5` must lex as Int, Punct, Punct, Int — not a float `0.` plus junk.
    let src = "for i in 0..5 {}";
    assert_eq!(only(src, TokKind::Int), vec!["0", "5"]);
    assert!(only(src, TokKind::Float).is_empty());
}

#[test]
fn line_numbers_are_one_based_and_track_newlines() {
    let src = "a\nb\n\nc";
    let lines: Vec<u32> = lex(src)
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.line)
        .collect();
    assert_eq!(lines, vec![1, 2, 4]);
}

#[test]
fn multiline_tokens_report_their_first_line() {
    let src = "/* one\ntwo */ x \"a\nb\" y";
    let toks = lex(src);
    let bc = toks
        .iter()
        .find(|t| t.kind == TokKind::BlockComment)
        .unwrap();
    assert_eq!(bc.line, 1);
    let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
    assert_eq!(s.line, 2, "string opens on the comment's closing line");
    let y = toks.iter().rfind(|t| t.kind == TokKind::Ident).unwrap();
    assert_eq!((y.text(src), y.line), ("y", 3));
}

#[test]
fn glued_puncts_keep_adjacent_spans() {
    // The rule engine matches `::` and `==` as adjacent single-char
    // puncts whose spans touch; verify the lexer preserves adjacency.
    let src = "a::b == c";
    let toks = lex(src);
    let puncts: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Punct).collect();
    assert_eq!(puncts.len(), 4);
    assert_eq!(puncts[0].end, puncts[1].start, ":: must be adjacent");
    assert_eq!(puncts[2].end, puncts[3].start, "== must be adjacent");
}

#[test]
fn every_byte_covered_in_order() {
    let src = "fn main() { let s = \"x\"; /* c */ } // tail";
    let toks = lex(src);
    let mut prev_end = 0;
    for t in &toks {
        assert!(
            t.start >= prev_end,
            "spans must not overlap or go backwards"
        );
        assert!(t.end > t.start, "empty token span");
        assert!(
            src[prev_end..t.start].chars().all(char::is_whitespace),
            "only whitespace may fall between tokens"
        );
        prev_end = t.end;
    }
    assert!(src[prev_end..].chars().all(char::is_whitespace));
}

//! Parser soundness: the item-level parser is *total* and its spans
//! round-trip. Over every `.rs` file in this workspace — and over
//! generated token soup — the top-level item ranges must tile
//! `[0, sig.len())` exactly (every significant token attributed to
//! exactly one item, in order, no overlap), with nested module items
//! staying inside their parent and pairwise disjoint.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use edm_audit::ast::{Item, ItemKind};
use edm_audit::{audit_sources, SourceFile};

/// Asserts the span invariants for one parsed file.
fn assert_spans_sound(file: &SourceFile) {
    let n = file.sig.len();
    let items = &file.ast.items;
    if n == 0 {
        assert!(items.is_empty(), "{}: items without tokens", file.rel_path);
        return;
    }
    assert!(!items.is_empty(), "{}: tokens without items", file.rel_path);
    // Top-level tiling: contiguous cover of the whole token stream.
    let mut cursor = 0usize;
    for item in items {
        assert_eq!(
            item.lo, cursor,
            "{}: gap or overlap before item at token {cursor}",
            file.rel_path
        );
        assert!(
            item.hi > item.lo,
            "{}: empty item span at token {}",
            file.rel_path,
            item.lo
        );
        cursor = item.hi;
    }
    assert_eq!(cursor, n, "{}: trailing tokens unattributed", file.rel_path);
    for item in items {
        assert_nested_sound(file, item);
    }
}

/// Module children sit strictly inside the parent span, in order,
/// without overlapping each other.
fn assert_nested_sound(file: &SourceFile, item: &Item) {
    if let ItemKind::Mod(m) = &item.kind {
        let mut cursor = item.lo;
        for child in &m.items {
            assert!(
                child.lo >= cursor && child.hi > child.lo && child.hi <= item.hi,
                "{}: mod `{}` child span {}..{} escapes parent {}..{}",
                file.rel_path,
                m.name,
                child.lo,
                child.hi,
                item.lo,
                item.hi
            );
            cursor = child.hi;
            assert_nested_sound(file, child);
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Span round-trip over the real workspace: every file this repo
/// builds must parse totally.
#[test]
fn workspace_item_spans_partition_every_file() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    assert!(
        files.len() > 50,
        "workspace walk found only {} files — wrong root?",
        files.len()
    );
    for path in files {
        let src = std::fs::read_to_string(&path).expect("readable source");
        let rel = path.strip_prefix(&root).unwrap_or(&path);
        let file = SourceFile::new(rel.to_string_lossy().replace('\\', "/"), src);
        assert_spans_sound(&file);
    }
}

/// The parser recognizes real items in the workspace, it doesn't just
/// bucket everything as `Other("unparsed")`.
#[test]
fn workspace_parse_recognizes_items() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    let (mut fns, mut structs, mut unparsed, mut total) = (0usize, 0usize, 0usize, 0usize);
    for path in files {
        let src = std::fs::read_to_string(&path).expect("readable source");
        let file = SourceFile::new(path.to_string_lossy().into_owned(), src);
        fns += file.ast.fns().len();
        structs += file.ast.structs().len();
        for item in &file.ast.items {
            total += 1;
            if matches!(item.kind, ItemKind::Other("unparsed")) {
                unparsed += 1;
            }
        }
    }
    assert!(fns > 500, "only {fns} fns parsed across the workspace");
    assert!(structs > 100, "only {structs} structs parsed");
    // Unparsed fallback items must stay a rare escape hatch.
    assert!(
        unparsed * 50 <= total,
        "{unparsed}/{total} top-level items fell back to unparsed"
    );
}

/// Item-shaped fragments plus deliberate garbage: the parser must stay
/// total and span-sound on any interleaving.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fn f(a: u64, b_us: u64) -> u64 { let x = a + b_us; x }".to_string()),
        Just("pub struct S { pub a: u64, b: Mutex<u64> }".to_string()),
        Just("impl S { fn m(&self) -> u64 { self.a } }".to_string()),
        Just("use std::collections::HashMap;".to_string()),
        Just("#[derive(Debug, Clone)]".to_string()),
        Just("enum E { A, B = 3, C(u64) }".to_string()),
        Just("mod inner { pub fn g() {} }".to_string()),
        Just("#[cfg(test)] mod tests { #[test] fn t() { assert!(true); } }".to_string()),
        Just("trait T { fn t(&self) -> u64; }".to_string()),
        Just("pub const X: u64 = 1;".to_string()),
        Just("static Y: &str = \"s\";".to_string()),
        Just("type Alias<T> = std::sync::Mutex<T>;".to_string()),
        Just("macro_rules! m { () => {} }".to_string()),
        Just(
            "impl Iterator for S { type Item = u64; fn next(&mut self) -> Option<u64> { None } }"
                .to_string()
        ),
        // Garbage the fallback path must survive.
        Just("fn".to_string()),
        Just("impl {".to_string()),
        Just("} }".to_string()),
        Just(") ; (".to_string()),
        Just("-> <T as U>::V".to_string()),
        Just("#![allow(dead_code)]".to_string()),
        Just("::".to_string()),
        Just("let stray = 1;".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn generated_sources_parse_totally(parts in prop::collection::vec(fragment(), 0..24)) {
        let src = parts.join("\n");
        let file = SourceFile::new("crates/cluster/src/lib.rs".to_string(), src.clone());
        assert_spans_sound(&file);
        // And the whole engine — semantic passes included — must not
        // panic on whatever the parser produced.
        let out = audit_sources(vec![("crates/cluster/src/lib.rs".to_string(), src)]);
        let _ = out.render_text();
        let _ = out.render_json();
    }
}

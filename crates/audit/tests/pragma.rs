//! Pragma parser tests: grammar acceptance, mandatory reasons, and
//! target-line resolution (same line vs. next code line, stacking).

use edm_audit::{lex, parse_pragmas};

type ParsedPragma = (String, String, u32, u32);

fn pragmas(src: &str) -> (Vec<ParsedPragma>, Vec<(u32, String)>) {
    let toks = lex(src);
    let (ps, es) = parse_pragmas(src, &toks);
    (
        ps.into_iter()
            .map(|p| (p.rule, p.reason, p.line, p.target_line))
            .collect(),
        es.into_iter().map(|e| (e.line, e.detail)).collect(),
    )
}

#[test]
fn trailing_pragma_targets_its_own_line() {
    let src = "let x = m.unwrap(); // edm-audit: allow(panic.unwrap, \"checked above\")\n";
    let (ps, es) = pragmas(src);
    assert!(es.is_empty(), "{es:?}");
    assert_eq!(ps.len(), 1);
    let (rule, reason, line, target) = &ps[0];
    assert_eq!(
        (rule.as_str(), reason.as_str()),
        ("panic.unwrap", "checked above")
    );
    assert_eq!((*line, *target), (1, 1));
}

#[test]
fn own_line_pragma_targets_next_code_line() {
    let src = "\n// edm-audit: allow(det.map_iter, \"order-insensitive sum\")\nlet s: u64 = m.values().sum();\n";
    let (ps, es) = pragmas(src);
    assert!(es.is_empty(), "{es:?}");
    assert_eq!(ps[0].2, 2, "pragma line");
    assert_eq!(ps[0].3, 3, "target line");
}

#[test]
fn pragmas_stack_over_comments() {
    let src = "\
// edm-audit: allow(panic.unwrap, \"reason one\")\n\
// an unrelated explanatory comment\n\
// edm-audit: allow(det.map_iter, \"reason two\")\n\
for k in m.keys().unwrap() {}\n";
    let (ps, es) = pragmas(src);
    assert!(es.is_empty(), "{es:?}");
    assert_eq!(ps.len(), 2);
    assert!(
        ps.iter().all(|p| p.3 == 4),
        "both target the code line: {ps:?}"
    );
}

#[test]
fn doc_comment_pragma_is_honored() {
    let src = "/// edm-audit: allow(panic.expect, \"constructor contract\")\nlet v = o.expect(\"cfg\");\n";
    let (ps, es) = pragmas(src);
    assert!(es.is_empty(), "{es:?}");
    assert_eq!(ps[0].3, 2);
}

#[test]
fn missing_reason_is_an_error() {
    let (ps, es) = pragmas("// edm-audit: allow(panic.unwrap)\nx.unwrap();\n");
    assert!(ps.is_empty());
    assert_eq!(es.len(), 1);
    assert!(es[0].1.contains("mandatory"), "{es:?}");
}

#[test]
fn empty_reason_is_an_error() {
    let (ps, es) = pragmas("// edm-audit: allow(panic.unwrap, \"  \")\nx.unwrap();\n");
    assert!(ps.is_empty());
    assert!(es[0].1.contains("must not be empty"), "{es:?}");
}

#[test]
fn unquoted_reason_is_an_error() {
    let (ps, es) = pragmas("// edm-audit: allow(panic.unwrap, checked)\nx.unwrap();\n");
    assert!(ps.is_empty());
    assert!(es[0].1.contains("double-quoted"), "{es:?}");
}

#[test]
fn unknown_action_is_an_error() {
    let (ps, es) = pragmas("// edm-audit: deny(panic.unwrap, \"r\")\n");
    assert!(ps.is_empty());
    assert!(es[0].1.contains("unknown pragma action"), "{es:?}");
}

#[test]
fn near_miss_without_colon_is_an_error() {
    let (ps, es) = pragmas("// edm-audit allow(panic.unwrap, \"r\")\n");
    assert!(ps.is_empty());
    assert_eq!(es.len(), 1, "{es:?}");
}

#[test]
fn prose_mentioning_the_tool_is_not_a_pragma() {
    let (ps, es) = pragmas("// edm-audit scans this file like any other\n");
    assert!(ps.is_empty());
    assert!(es.is_empty(), "{es:?}");
}

#[test]
fn pragma_inside_string_literal_is_inert() {
    let src = "let s = \"// edm-audit: allow(panic.unwrap, \\\"r\\\")\";\n";
    let (ps, es) = pragmas(src);
    assert!(ps.is_empty(), "{ps:?}");
    assert!(es.is_empty(), "{es:?}");
}

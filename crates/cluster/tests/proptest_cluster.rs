//! Property-based tests of the cluster substrate: for randomly generated
//! mini-workloads the replay engine completes every record, conserves
//! objects, and keeps extent/SSD accounting consistent — under both a
//! no-op policy and a randomized (but rule-abiding) migrator.

use edm_cluster::{
    run_trace, Cluster, ClusterConfig, ClusterView, MigrationSchedule, Migrator, MoveAction,
    NoMigration, SimOptions,
};
use edm_workload::{FileId, FileOp, Trace, TraceRecord};
use proptest::prelude::*;

/// Builds a small but varied trace from proptest-chosen parameters.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    (
        2u64..20, // files
        prop::collection::vec((0u64..20, 0u8..4, 1u64..60_000, 0u64..200_000), 1..120),
        1u64..3, // size multiplier
    )
        .prop_map(|(files, ops, mult)| {
            let mut t = Trace::new("prop");
            for f in 0..files {
                t.file_sizes.insert(FileId(f), 64 * 1024 + f * 9_000 * mult);
            }
            let mut clock = 0u64;
            for (f, kind, len, offset) in ops {
                let file = FileId(f % files);
                let size = t.file_sizes[&file];
                clock += 17;
                let op = match kind {
                    0 => FileOp::Open,
                    1 => FileOp::Close,
                    2 => {
                        let len = len.clamp(1, size);
                        FileOp::Read {
                            offset: offset % (size - len + 1),
                            len,
                        }
                    }
                    _ => {
                        let len = len.clamp(1, size);
                        FileOp::Write {
                            offset: offset % (size - len + 1),
                            len,
                        }
                    }
                };
                t.records.push(TraceRecord {
                    time_us: clock,
                    user: (f % 7) as u32,
                    file,
                    op,
                });
            }
            t
        })
}

/// A migrator that plans a pseudo-random (but structurally valid,
/// intra-group) move set at the midpoint.
struct RandomMigrator {
    seed: u64,
}

impl Migrator for RandomMigrator {
    fn name(&self) -> &str {
        "RandomMigrator"
    }

    fn plan(&mut self, view: &ClusterView) -> Vec<MoveAction> {
        let mut x = self.seed | 1;
        let mut plan = Vec::new();
        for o in &view.objects {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if !x.is_multiple_of(5) {
                continue;
            }
            // Pick an intra-group destination different from the source.
            let group = view.osd(o.osd).group;
            let peers: Vec<_> = view
                .osds
                .iter()
                .filter(|p| p.group == group && p.osd != o.osd)
                .collect();
            if peers.is_empty() {
                continue;
            }
            let dest = peers[(x >> 13) as usize % peers.len()].osd;
            plan.push(MoveAction {
                object: o.object,
                source: o.osd,
                dest,
            });
            if plan.len() >= 12 {
                break;
            }
        }
        plan
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every record completes and the report is self-consistent under the
    /// no-migration baseline.
    #[test]
    fn baseline_replay_always_completes(trace in trace_strategy()) {
        let cluster = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        let total_objects = cluster.catalog.total_objects();
        let report = run_trace(cluster, &trace, &mut NoMigration, SimOptions::default());
        prop_assert_eq!(report.completed_ops, trace.records.len() as u64);
        prop_assert_eq!(report.total_objects, total_objects);
        let windowed: u64 = report.response_windows.iter().map(|w| w.completed_ops).sum();
        prop_assert_eq!(windowed, report.completed_ops);
    }

    /// Random (valid) migrations never lose objects, never violate the
    /// free-space invariant, and the replay still completes.
    #[test]
    fn random_migrations_preserve_objects(trace in trace_strategy(), seed in any::<u64>()) {
        let cluster = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        let files = trace.file_sizes.len() as u64;
        let mut policy = RandomMigrator { seed };
        let report = run_trace(cluster, &trace, &mut policy, SimOptions {
            schedule: MigrationSchedule::Midpoint,
            ..SimOptions::default()
        });
        prop_assert_eq!(report.completed_ops, trace.records.len() as u64);
        // Objects conserved: every file still has its 4 objects, spread
        // over the per-OSD summaries' utilizations summing to the same
        // footprint (indirect check via remap consistency).
        prop_assert!(report.remap_entries <= report.moved_objects);
        prop_assert_eq!(report.total_objects, files * 4);
    }

    /// Determinism under migration: identical traces and seeds give
    /// identical reports.
    #[test]
    fn migrated_replay_is_deterministic(trace in trace_strategy(), seed in any::<u64>()) {
        let run = || {
            let cluster = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
            let mut policy = RandomMigrator { seed };
            run_trace(cluster, &trace, &mut policy, SimOptions::default())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.duration_us, b.duration_us);
        prop_assert_eq!(a.moved_objects, b.moved_objects);
        prop_assert_eq!(a.aggregate_erases(), b.aggregate_erases());
        prop_assert_eq!(a.mean_response_us, b.mean_response_us);
    }
}

//! Differential property tests: the calendar queue must reproduce the
//! reference `BinaryHeap` order exactly — including `(time, seq)`
//! tie-breaks — under arbitrary interleavings of pushes and pops, and its
//! canonical sorted export must round-trip losslessly (the checkpoint
//! path).

use edm_cluster::equeue::{CalendarQueue, EventQueue, HeapQueue};
use proptest::prelude::*;

/// One scripted operation: push a delta/payload, or pop.
#[derive(Debug, Clone)]
enum Op {
    /// Push at `last_pop_time + delta` (keeps time monotone like the engine).
    Push {
        delta: u64,
        item: u32,
    },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..5_000, any::<u32>()).prop_map(|(delta, item)| Op::Push { delta, item }),
        1 => (100_000_000u64..200_000_000, any::<u32>())
            .prop_map(|(delta, item)| Op::Push { delta, item }),
        2 => Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn calendar_matches_heap_under_any_interleaving(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for op in &ops {
            match *op {
                Op::Push { delta, item } => {
                    seq += 1;
                    cal.push(now + delta, seq, item);
                    heap.push(now + delta, seq, item);
                }
                Op::Pop => {
                    let a = cal.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b);
                    if let Some((at, _, _)) = a {
                        now = at;
                    }
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        // Drain whatever is left: tails must agree element-for-element.
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn equal_times_break_ties_by_seq(n in 1usize..64, at in 0u64..1_000_000) {
        let mut cal = CalendarQueue::new();
        for seq in 0..n as u64 {
            cal.push(at, seq, seq as u32);
        }
        for want in 0..n as u64 {
            prop_assert_eq!(cal.pop(), Some((at, want, want as u32)));
        }
        prop_assert!(cal.pop().is_none());
    }

    #[test]
    fn sorted_export_roundtrips_queue_state(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut cal = CalendarQueue::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for op in &ops {
            match *op {
                Op::Push { delta, item } => {
                    seq += 1;
                    cal.push(now + delta, seq, item);
                }
                Op::Pop => {
                    if let Some((at, _, _)) = cal.pop() {
                        now = at;
                    }
                }
            }
        }
        // Export ascending (snapshot encoding), rebuild, and compare the
        // full pop order against the original.
        let exported = cal.to_sorted_vec();
        prop_assert!(exported.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        let mut rebuilt = CalendarQueue::new();
        for &(at, s, item) in &exported {
            rebuilt.push(at, s, item);
        }
        loop {
            let a = cal.pop();
            let b = rebuilt.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

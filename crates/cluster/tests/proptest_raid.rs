//! Property-based tests of the RAID-5 stripe layout and hash placement:
//! mappings must partition the byte range, stay inside object bounds,
//! keep parity separate from data, and preserve the group invariants for
//! every (n, m, k) the validator admits.

use edm_cluster::{IoKind, Placement, StripeLayout};
use edm_workload::FileId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A read maps to chunks that exactly tile [offset, offset+len), in
    /// order, each within one stripe unit of one object.
    #[test]
    fn read_mapping_tiles_the_range(
        k in 2u32..8,
        unit_kb in 1u64..128,
        offset in 0u64..10_000_000,
        len in 1u64..5_000_000,
    ) {
        let l = StripeLayout::new(k, unit_kb * 1024);
        let ios = l.map_read(offset, len);
        let total: u64 = ios.iter().map(|io| io.len).sum();
        prop_assert_eq!(total, len, "bytes not conserved");
        for io in &ios {
            prop_assert!(io.kind == IoKind::DataRead);
            prop_assert!(io.len <= l.unit);
            prop_assert!(io.object_index < k);
        }
        // Chunks fit the object sized for this file span.
        let osize = l.object_size(offset + len);
        for io in &ios {
            prop_assert!(io.offset + io.len <= osize);
        }
    }

    /// A write's data chunks tile the range, every data chunk has exactly
    /// one parity write of the same length on a *different* object, and
    /// the RMW read pair precedes each write pair.
    #[test]
    fn write_mapping_pairs_data_with_parity(
        k in 2u32..8,
        unit_kb in 1u64..64,
        offset in 0u64..5_000_000,
        len in 1u64..2_000_000,
    ) {
        let l = StripeLayout::new(k, unit_kb * 1024);
        let ios = l.map_write(offset, len);
        let data: u64 = ios
            .iter()
            .filter(|io| io.kind == IoKind::DataWrite)
            .map(|io| io.len)
            .sum();
        let parity: u64 = ios
            .iter()
            .filter(|io| io.kind == IoKind::ParityWrite)
            .map(|io| io.len)
            .sum();
        prop_assert_eq!(data, len);
        prop_assert_eq!(parity, len, "parity mirrors data bytes");
        // Group by chunk: [RmwRead, ParityRead, DataWrite, ParityWrite].
        prop_assert_eq!(ios.len() % 4, 0);
        for chunk in ios.chunks(4) {
            prop_assert_eq!(chunk[0].kind, IoKind::RmwRead);
            prop_assert_eq!(chunk[1].kind, IoKind::ParityRead);
            prop_assert_eq!(chunk[2].kind, IoKind::DataWrite);
            prop_assert_eq!(chunk[3].kind, IoKind::ParityWrite);
            prop_assert_ne!(chunk[2].object_index, chunk[3].object_index,
                "parity must live on a different object");
            prop_assert_eq!(chunk[2].offset, chunk[3].offset);
            prop_assert_eq!(chunk[2].len, chunk[3].len);
        }
    }

    /// Placement: every file's k objects land on k distinct OSDs in k
    /// distinct groups, ids round-trip, and group membership is a
    /// partition of the cluster.
    #[test]
    fn placement_invariants(
        osds in 4u32..64,
        inode in 0u64..1_000_000,
    ) {
        let m = 4u32.min(osds);
        let k = m;
        let p = Placement::new(osds, m, k);
        let file = FileId(inode);
        let mut seen_osds = std::collections::HashSet::new();
        let mut seen_groups = std::collections::HashSet::new();
        for i in 0..k {
            let osd = p.home_osd(file, i);
            prop_assert!(osd.0 < osds);
            prop_assert!(seen_osds.insert(osd), "objects share an OSD");
            prop_assert!(
                seen_groups.insert(p.group_of(osd)),
                "objects share a group (breaks SIII.D)"
            );
            let oid = p.object_id(file, i);
            prop_assert_eq!(p.object_owner(oid), (file, i));
        }
        // Groups partition the OSDs.
        let total: usize = (0..m)
            .map(|g| p.group_members(edm_cluster::GroupId(g)).len())
            .sum();
        prop_assert_eq!(total, osds as usize);
    }

    /// Object size is monotone in file size and always covers the last
    /// mapped byte.
    #[test]
    fn object_size_covers_every_access(
        k in 2u32..6,
        file_size in 1u64..20_000_000,
    ) {
        let l = StripeLayout::paper(k);
        let osize = l.object_size(file_size);
        prop_assert!(osize >= l.unit);
        prop_assert!(l.object_size(file_size + 1) >= osize);
        // The very last byte maps within bounds.
        for io in l.map_write(file_size - 1, 1) {
            prop_assert!(io.offset + io.len <= osize);
        }
    }
}

//! Step-wise driver over the replay engine for long-running hosts.
//!
//! The batch entry points ([`crate::sim::run_trace_obs_keep`]) own the
//! whole run: seed, drain, finalize, return. A live daemon cannot hand
//! its thread over like that — it needs to pace events against a wall
//! clock, service control traffic (pause/checkpoint/shutdown) between
//! events, and cut checkpoints on demand. [`LiveRun`] exposes exactly
//! that seam: the same engine, stepped one leg at a time under a caller
//! supplied [`TimeSource`], with every pause point surfaced as a
//! [`StepPause`].
//!
//! Determinism contract: a `LiveRun` stepped to completion produces the
//! same [`RunReport`] (and the same journal) as the batch run of the
//! same world, whatever the time source does — yields only suspend the
//! loop, they never reorder it. That is what makes the daemon's
//! `--resume` equivalence checkable with the existing report digest.

use std::path::{Path, PathBuf};

use edm_obs::Recorder;
use edm_snap::{SnapError, SnapshotFile};
use edm_workload::Trace;

use crate::cluster::Cluster;
use crate::metrics::RunReport;
use crate::migrate::Migrator;
use crate::pace::TimeSource;
use crate::sim::{emit_run_meta, new_engine, Engine, Pause, SimOptions, SnapManifest};

/// Where [`LiveRun::step`] handed control back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPause {
    /// A wear-monitor tick body just ran. This is the only point where
    /// the engine has no mid-decision state on the stack, so it is the
    /// only point where [`LiveRun::checkpoint_now`] may be called.
    Tick,
    /// The [`TimeSource`] yielded: the next event is not due yet. The
    /// caller may sleep or service control traffic, then step again.
    Yielded,
    /// The replay is complete; call [`LiveRun::finish`].
    Done,
}

/// A replay engine suspended between legs, owned by a host that decides
/// when to step it. Borrows the trace, policy, and recorder from the
/// caller — the host thread keeps them on its stack for the lifetime of
/// the run, exactly like the batch entry points do internally.
pub struct LiveRun<'a> {
    engine: Engine<'a, dyn Migrator + 'a, dyn Recorder + 'a>,
    total_records: u64,
}

impl<'a> LiveRun<'a> {
    /// Builds a fresh, seeded run (the live analogue of
    /// [`crate::sim::run_trace_obs_keep`], minus the drain). Live runs
    /// are always sequential: pacing is per-event, which has no meaning
    /// under the sharded coordinator's barriers.
    pub fn new(
        cluster: Cluster,
        trace: &'a Trace,
        policy: &'a mut dyn Migrator,
        options: SimOptions,
        obs: &'a mut dyn Recorder,
    ) -> LiveRun<'a> {
        emit_run_meta(&cluster, obs);
        let total_records = trace.records.len() as u64;
        let mut engine = new_engine(cluster, trace, policy, options, obs);
        engine.seed_events();
        LiveRun {
            engine,
            total_records,
        }
    }

    /// Rebuilds a run from a wear-tick checkpoint (the live analogue of
    /// [`crate::sim::resume_trace_obs_keep`], minus the drain). The
    /// caller supplies the same world the checkpoint was cut in; see
    /// that function's docs for the contract.
    pub fn resume(
        snap: &SnapshotFile,
        trace: &'a Trace,
        policy: &'a mut dyn Migrator,
        options: SimOptions,
        obs: &'a mut dyn Recorder,
    ) -> Result<LiveRun<'a>, SnapError> {
        let manifest = SnapManifest::from_snapshot(snap)?;
        if manifest.policy != policy.name() {
            return Err(SnapError::Corrupt {
                section: SnapManifest::SECTION.into(),
                detail: format!(
                    "checkpoint was cut under policy {:?}, cannot resume with {:?}",
                    manifest.policy,
                    policy.name()
                ),
            });
        }
        let cluster: Cluster = snap.decode("cluster")?;
        {
            let mut r = snap.reader("policy")?;
            policy.load_state(&mut r);
            r.finish("policy")?;
        }
        emit_run_meta(&cluster, obs);
        let total_records = trace.records.len() as u64;
        let mut engine = new_engine(cluster, trace, policy, options, obs);
        let mut r = snap.reader("engine")?;
        engine.load_engine(&mut r);
        r.finish("engine")?;
        Ok(LiveRun {
            engine,
            total_records,
        })
    }

    /// Runs one leg: dispatches events under `pace` until the source
    /// yields, a wear-monitor tick body completes, or the replay drains.
    /// The tick body (policy notification, continuous-mode migration,
    /// scheduled checkpoints) runs *inside* this call, so a returned
    /// [`StepPause::Tick`] means the engine is already past it.
    pub fn step(&mut self, pace: &mut dyn TimeSource) -> StepPause {
        if self.engine.run_paced(pace) {
            return StepPause::Yielded;
        }
        match self.engine.paused {
            Pause::Tick => {
                self.engine.handle_tick();
                StepPause::Tick
            }
            Pause::Done => StepPause::Done,
        }
    }

    /// Cuts a checkpoint into `dir` right now and returns its path.
    /// Only legal immediately after [`StepPause::Tick`] — between other
    /// events the engine holds mid-decision state that the snapshot
    /// format deliberately cannot represent.
    pub fn checkpoint_now(&mut self, dir: &Path) -> Result<PathBuf, SnapError> {
        let path = dir.join(format!("ckpt_{:020}.snap", self.engine.now));
        if let Err(e) = std::fs::create_dir_all(dir) {
            return Err(SnapError::Io(format!(
                "creating checkpoint dir {}: {e}",
                dir.display()
            )));
        }
        self.engine.obs.counter("sim.checkpoints", 1);
        self.engine.to_snapshot().write_to(&path)?;
        Ok(path)
    }

    /// Virtual time of the last dispatched event.
    pub fn now_us(&self) -> u64 {
        self.engine.now
    }

    /// File operations completed so far.
    pub fn completed_ops(&self) -> u64 {
        self.engine.completed_ops
    }

    /// File operations in the whole trace.
    pub fn total_ops(&self) -> u64 {
        self.total_records
    }

    /// Read access to the simulated cluster mid-run.
    pub fn cluster(&self) -> &Cluster {
        &self.engine.cluster
    }

    /// Finalizes a drained run: invariant checks + report construction.
    /// Call only after [`StepPause::Done`].
    pub fn finish(self) -> (RunReport, Cluster) {
        self.engine.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::migrate::NoMigration;
    use crate::pace::TimeStep;
    use crate::sim::run_trace_obs_keep;
    use edm_obs::NoopRecorder;
    use edm_workload::{harvard, synth::synthesize};

    fn world() -> (Trace, Cluster) {
        let trace = synthesize(&harvard::spec("deasna").scaled(0.001));
        let cluster = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        (trace, cluster)
    }

    /// Yields on every other consultation — the adversarial pacer.
    struct Choppy(u64);
    impl TimeSource for Choppy {
        fn wait_until(&mut self, _at: u64) -> TimeStep {
            self.0 += 1;
            if self.0.is_multiple_of(2) {
                TimeStep::Yield
            } else {
                TimeStep::Proceed
            }
        }
    }

    #[test]
    fn stepped_run_matches_batch_run() {
        let (trace, cluster) = world();
        let batch = {
            let (t, c) = (trace.clone(), cluster.clone());
            run_trace_obs_keep(
                c,
                &t,
                &mut NoMigration,
                SimOptions::default(),
                &mut NoopRecorder,
            )
            .0
        };
        let mut policy = NoMigration;
        let mut obs = NoopRecorder;
        let mut live = LiveRun::new(
            cluster,
            &trace,
            &mut policy,
            SimOptions::default(),
            &mut obs,
        );
        let mut pace = Choppy(0);
        let mut yields = 0u64;
        loop {
            match live.step(&mut pace) {
                StepPause::Done => break,
                StepPause::Yielded => yields += 1,
                StepPause::Tick => {}
            }
        }
        assert!(yields > 0, "the choppy pacer must actually yield");
        let (report, _) = live.finish();
        assert_eq!(format!("{report:?}"), format!("{batch:?}"));
    }
}

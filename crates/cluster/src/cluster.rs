//! Cluster construction: capacity sizing, file pre-creation, and the
//! steady-state warm-up (§IV–§V.A).

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use edm_workload::Trace;

use crate::catalog::Catalog;
use crate::config::ClusterConfig;
use crate::ids::{ObjectId, OsdId};
use crate::migrate::{ClusterView, ObjectView, OsdView};
use crate::osd::Osd;

/// A built cluster: the metadata catalog plus its storage nodes, ready for
/// replay. `Clone` exists for the group-sharded runner, which hands each
/// shard a full copy and lets every shard mutate only the OSD slots its
/// component owns.
#[derive(Clone)]
pub struct Cluster {
    pub config: ClusterConfig,
    pub catalog: Catalog,
    pub osds: Vec<Osd>,
}

impl Cluster {
    /// Builds the cluster for one trace:
    ///
    /// 1. registers every file of the trace (k objects each, hash placed);
    /// 2. sizes every SSD identically so the *most* utilized one sits at
    ///    `target_max_utilization` ("the capacity of each SSD is set the
    ///    same dynamically before running each trace-replaying program,
    ///    which allows the maximum utilization among all SSDs is about 70
    ///    percent", §IV);
    /// 3. pre-creates and populates all objects (§V.A);
    /// 4. runs the steady-state warm-up and zeroes wear counters.
    pub fn build(config: ClusterConfig, trace: &Trace) -> Result<Cluster, String> {
        config.validate()?;
        let mut catalog = Catalog::new(config.placement(), config.stripe_layout());
        for (&file, &size) in &trace.file_sizes {
            catalog.create_file(file, size);
        }

        // Footprint per OSD under pure hash placement.
        let mut footprint = vec![0u64; config.osds as usize];
        for meta in catalog.files() {
            for (i, &obj) in meta.objects.iter().enumerate() {
                let osd = catalog.placement().home_osd(meta.file, i as u32);
                debug_assert_eq!(catalog.locate(obj), osd);
                footprint[osd.0 as usize] += meta.object_size;
            }
        }
        let max_footprint = footprint.iter().copied().max().unwrap_or(0).max(1);
        let capacity = (max_footprint as f64 / config.target_max_utilization) as u64;

        let mut osds: Vec<Osd> = (0..config.osds)
            .map(|i| Osd::with_ftl(OsdId(i), capacity, config.latency, config.ftl))
            .collect();

        // Pre-create and populate every object (setup is untimed).
        for meta in catalog.files() {
            for &obj in &meta.objects {
                let osd = catalog.locate(obj);
                osds[osd.0 as usize]
                    .create_object(obj, meta.object_size, true)
                    .map_err(|e| format!("pre-creating {obj} on {osd}: {e}"))?;
            }
        }

        if config.skip_warm_up {
            for osd in &mut osds {
                osd.reset_wear();
            }
        } else {
            for osd in &mut osds {
                osd.warm_up().map_err(|e| format!("warm-up: {e}"))?;
            }
        }

        Ok(Cluster {
            config,
            catalog,
            osds,
        })
    }

    pub fn osd(&self, id: OsdId) -> &Osd {
        &self.osds[id.0 as usize]
    }

    pub fn osd_mut(&mut self, id: OsdId) -> &mut Osd {
        &mut self.osds[id.0 as usize]
    }

    /// Maximum utilization across OSDs (should be ≈ the configured target
    /// right after build).
    pub fn max_utilization(&self) -> f64 {
        self.osds
            .iter()
            .map(|o| o.utilization())
            .fold(0.0, f64::max)
    }

    /// Builds the policy-facing snapshot (§III.B inputs).
    pub fn view(&self, now_us: u64) -> ClusterView {
        let placement = self.catalog.placement();
        // edm-audit: allow(panic.slice_index, "ClusterConfig validation guarantees at least one OSD")
        let page_size = self.osds[0].ssd().geometry().page_size;
        // edm-audit: allow(panic.slice_index, "ClusterConfig validation guarantees at least one OSD")
        let pages_per_block = self.osds[0].ssd().geometry().pages_per_block;
        let osds = self
            .osds
            .iter()
            .map(|o| OsdView {
                osd: o.id,
                group: placement.group_of(o.id),
                wc_pages: o.wc_window_pages(),
                utilization: o.utilization(),
                measured_erases: o.ssd().wear().block_erases,
                ewma_latency_us: o.ewma_latency_us(),
                free_bytes: o.free_bytes(),
                capacity_bytes: o.capacity_bytes(),
            })
            .collect();
        let mut objects = Vec::with_capacity(self.catalog.total_objects() as usize);
        for meta in self.catalog.files() {
            for &obj in &meta.objects {
                objects.push(ObjectView {
                    object: obj,
                    osd: self.catalog.locate(obj),
                    size_bytes: meta.object_size,
                    remapped: self.catalog.remap().contains(obj),
                });
            }
        }
        ClusterView {
            now_us,
            page_size,
            pages_per_block,
            osds,
            objects,
        }
    }

    /// Object size lookup through the catalog.
    pub fn object_size(&self, object: ObjectId) -> Option<u64> {
        let (file, _) = self.catalog.placement().object_owner(object);
        self.catalog.file(file).map(|m| m.object_size)
    }

    /// Structural invariants of a quiescent cluster (post-build or
    /// end-of-run), for the differential fuzzer's policy oracle:
    ///
    /// 1. per-device accounting stays inside capacity;
    /// 2. the remapping table only overlays cataloged objects, never maps
    ///    an object to its home OSD (such entries are pruned on return),
    ///    and never points outside the cluster — and being a map keyed by
    ///    object id it cannot hold duplicate entries, so the overlay stays
    ///    one-to-one;
    /// 3. every cataloged object is present in the directory of exactly
    ///    the OSD the catalog locates it on, and no OSD holds objects the
    ///    catalog does not place there;
    /// 4. no two objects of one file share an SSD group (RAID-5 fault
    ///    independence, §III.D) — placement guarantees it initially and
    ///    intra-group migration/rebuild must preserve it. Only checked
    ///    when `enforce_group_independence` is set: the CMT baseline
    ///    deliberately ignores group boundaries (its moves may co-locate
    ///    a file's objects), while the EDM policies and rebuild must not.
    ///
    /// `failed_osds` are devices killed by fault injection: objects still
    /// located there may be lost (directory emptied on failure), so they
    /// are exempt from the presence and group checks.
    pub fn check_invariants(
        &self,
        failed_osds: &[u32],
        enforce_group_independence: bool,
    ) -> Result<(), String> {
        self.config.validate()?;
        let placement = *self.catalog.placement();
        for osd in &self.osds {
            let u = osd.utilization();
            if !(0.0..=1.0).contains(&u) {
                return Err(format!("{}: utilization {u} outside [0, 1]", osd.id));
            }
            if osd.free_bytes() > osd.capacity_bytes() {
                return Err(format!(
                    "{}: free bytes {} exceed capacity {}",
                    osd.id,
                    osd.free_bytes(),
                    osd.capacity_bytes()
                ));
            }
        }
        for (object, dest) in self.catalog.remap().iter() {
            if dest.0 >= self.config.osds {
                return Err(format!("remap entry {object} -> {dest}: no such OSD"));
            }
            let (file, index) = placement.object_owner(object);
            let known = self
                .catalog
                .file(file)
                .is_some_and(|m| m.objects.get(index as usize) == Some(&object));
            if !known {
                return Err(format!(
                    "remap entry {object} -> {dest}: object is not in the catalog"
                ));
            }
            if dest == self.catalog.home_of(object) {
                return Err(format!(
                    "remap entry {object} -> {dest}: points at the object's home \
                     (home entries must be pruned)"
                ));
            }
        }
        let mut expected = vec![0u64; self.config.osds as usize];
        for meta in self.catalog.files() {
            let mut groups_seen: Vec<crate::ids::GroupId> = Vec::new();
            for &obj in &meta.objects {
                let loc = self.catalog.locate(obj);
                let Some(osd) = self.osds.get(loc.0 as usize) else {
                    return Err(format!("{obj} located on nonexistent {loc}"));
                };
                if failed_osds.contains(&loc.0) {
                    continue; // possibly lost with its device
                }
                if !osd.has_object(obj) {
                    return Err(format!(
                        "{obj} located on {loc} but absent from its directory"
                    ));
                }
                if let Some(slot) = expected.get_mut(loc.0 as usize) {
                    *slot += 1;
                }
                if enforce_group_independence {
                    let g = placement.group_of(loc);
                    if groups_seen.contains(&g) {
                        return Err(format!(
                            "file {:?}: two objects share {g} — RAID-5 fault independence broken",
                            meta.file
                        ));
                    }
                    groups_seen.push(g);
                }
            }
        }
        for osd in &self.osds {
            if failed_osds.contains(&osd.id.0) {
                continue;
            }
            let have = osd.object_count() as u64;
            let want = expected.get(osd.id.0 as usize).copied().unwrap_or(0);
            if have != want {
                return Err(format!(
                    "{}: directory holds {have} objects but the catalog places {want} there",
                    osd.id
                ));
            }
        }
        Ok(())
    }
}

impl Snapshot for Cluster {
    fn save(&self, w: &mut SnapWriter) {
        self.config.save(w);
        self.catalog.save(w);
        self.osds.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        let c = Cluster {
            config: ClusterConfig::load(r),
            catalog: Catalog::load(r),
            osds: Vec::load(r),
        };
        if !r.failed() && c.osds.len() != c.config.osds as usize {
            r.corrupt(format!(
                "cluster has {} OSDs but config says {}",
                c.osds.len(),
                c.config.osds
            ));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_workload::{harvard, synth::synthesize};

    fn small_trace() -> Trace {
        synthesize(&harvard::spec("deasna").scaled(0.002))
    }

    #[test]
    fn build_places_every_object() {
        let trace = small_trace();
        let c = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        let files = trace.file_sizes.len();
        let total: usize = c.osds.iter().map(|o| o.object_count()).sum();
        assert_eq!(total, files * 4);
        assert_eq!(c.catalog.total_objects(), (files * 4) as u64);
    }

    #[test]
    fn max_utilization_near_target() {
        let trace = small_trace();
        let c = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        let max = c.max_utilization();
        assert!(
            (max - 0.70).abs() < 0.05,
            "max utilization {max} should be ≈ 0.70"
        );
    }

    #[test]
    fn wear_counters_are_zero_after_build() {
        let trace = small_trace();
        let c = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        for osd in &c.osds {
            assert_eq!(osd.ssd().wear().host_page_writes, 0);
            assert_eq!(osd.wc_window_pages(), 0);
        }
    }

    #[test]
    fn view_is_complete_and_consistent() {
        let trace = small_trace();
        let c = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        let v = c.view(123);
        assert_eq!(v.now_us, 123);
        assert_eq!(v.osds.len(), 8);
        assert_eq!(v.objects.len(), c.catalog.total_objects() as usize);
        assert_eq!(v.page_size, 4096);
        assert_eq!(v.pages_per_block, 32);
        for o in &v.objects {
            assert!(!o.remapped);
            assert!(o.size_bytes > 0);
            assert!(c.osd(o.osd).has_object(o.object));
        }
    }

    #[test]
    fn all_osds_get_same_capacity() {
        let trace = small_trace();
        let c = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        let cap = c.osds[0].capacity_bytes();
        assert!(c.osds.iter().all(|o| o.capacity_bytes() == cap));
    }

    #[test]
    fn invalid_config_is_reported() {
        let mut cfg = ClusterConfig::test_small();
        cfg.target_max_utilization = 0.0;
        assert!(Cluster::build(cfg, &small_trace()).is_err());
    }
}

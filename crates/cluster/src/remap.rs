//! The remapping table (§III.C).
//!
//! EDM keeps hash-based placement and overlays moved objects with a
//! remapping table: object id → current OSD. Its size is proportional to
//! the number of *distinct* moved objects, so both EDM policies prefer to
//! re-migrate objects that already have an entry (moving such an object
//! only updates its entry and does not grow the table).

use edm_snap::{FlatMap, SnapReader, SnapWriter, Snapshot};

use crate::ids::{ObjectId, OsdId};

/// Overlay of moved objects on top of hash placement.
#[derive(Debug, Clone, Default)]
pub struct RemappingTable {
    /// Sorted by object id so `iter` (and the snapshot encoding) is
    /// deterministic without a sort. A flat sorted vector: lookups are
    /// binary searches over one contiguous allocation, which beats the
    /// pointer-chasing `BTreeMap` it replaced on the simulator's hot
    /// routing path.
    map: FlatMap<ObjectId, OsdId>,
    /// Total remap insert/update operations (monotone; counts every move).
    moves_recorded: u64,
}

impl RemappingTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current location override for `object`, if it was ever moved.
    pub fn lookup(&self, object: ObjectId) -> Option<OsdId> {
        self.map.get(&object).copied()
    }

    /// Folds another table's entries into this one. Used by the
    /// group-sharded runner to reassemble the global table from per-shard
    /// fragments; the fragments cover disjoint placement components, so
    /// the union never collides.
    pub fn merge_from(&mut self, other: &RemappingTable) {
        for (object, dest) in other.iter() {
            let prev = self.map.insert(object, dest);
            assert!(
                prev.is_none(),
                "remap fragments overlap on {object} — shard components were not disjoint"
            );
        }
        self.moves_recorded += other.moves_recorded;
    }

    /// True if the object already has an entry (moving it again is
    /// "free" in table-growth terms, §III.C).
    pub fn contains(&self, object: ObjectId) -> bool {
        self.map.contains_key(&object)
    }

    /// Records a move. If the object lands back on `home` the entry could
    /// be dropped; the paper's table keeps entries, so we do too unless
    /// `home` is supplied.
    pub fn record_move(&mut self, object: ObjectId, dest: OsdId) {
        self.moves_recorded += 1;
        self.map.insert(object, dest);
    }

    /// Records a move and prunes the entry when the object returned to its
    /// home OSD.
    pub fn record_move_with_home(&mut self, object: ObjectId, dest: OsdId, home: OsdId) {
        self.moves_recorded += 1;
        if dest == home {
            self.map.remove(&object);
        } else {
            self.map.insert(object, dest);
        }
    }

    /// Number of entries — the memory-consumption metric of Fig. 8's
    /// discussion (table growth tracks distinct moved objects).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total moves ever recorded (≥ `len()`).
    pub fn moves_recorded(&self) -> u64 {
        self.moves_recorded
    }

    /// Iterates over (object, current OSD) entries in ascending object
    /// id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, OsdId)> + '_ {
        self.map.iter().map(|(o, d)| (*o, *d))
    }

    /// Bytes of memory an entry costs (object id + OSD id), used to report
    /// table overhead.
    pub const ENTRY_BYTES: usize = std::mem::size_of::<ObjectId>() + std::mem::size_of::<OsdId>();

    pub fn approx_bytes(&self) -> usize {
        self.len() * Self::ENTRY_BYTES
    }
}

impl Snapshot for RemappingTable {
    /// Entries are serialized sorted by object id (the map's natural
    /// order) so two equal tables always produce the same bytes.
    fn save(&self, w: &mut SnapWriter) {
        self.map.save(w);
        w.put_u64(self.moves_recorded);
    }
    fn load(r: &mut SnapReader) -> Self {
        let entries = Vec::<(ObjectId, OsdId)>::load(r);
        let moves_recorded = r.take_u64();
        let mut map = FlatMap::new();
        for (o, d) in entries {
            if map.insert(o, d).is_some() {
                r.corrupt("remapping table has duplicate entries");
            }
        }
        RemappingTable {
            map,
            moves_recorded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_reflects_moves() {
        let mut t = RemappingTable::new();
        assert_eq!(t.lookup(ObjectId(1)), None);
        t.record_move(ObjectId(1), OsdId(5));
        assert_eq!(t.lookup(ObjectId(1)), Some(OsdId(5)));
        t.record_move(ObjectId(1), OsdId(9));
        assert_eq!(t.lookup(ObjectId(1)), Some(OsdId(9)));
    }

    #[test]
    fn remigration_does_not_grow_table() {
        let mut t = RemappingTable::new();
        t.record_move(ObjectId(1), OsdId(5));
        t.record_move(ObjectId(1), OsdId(9));
        t.record_move(ObjectId(1), OsdId(13));
        assert_eq!(t.len(), 1, "re-migrations must reuse the entry");
        assert_eq!(t.moves_recorded(), 3);
    }

    #[test]
    fn moving_home_prunes_entry() {
        let mut t = RemappingTable::new();
        t.record_move(ObjectId(7), OsdId(2));
        assert_eq!(t.len(), 1);
        t.record_move_with_home(ObjectId(7), OsdId(0), OsdId(0));
        assert_eq!(t.len(), 0);
        assert_eq!(t.lookup(ObjectId(7)), None);
        assert_eq!(t.moves_recorded(), 2);
    }

    #[test]
    fn approx_bytes_scales_with_entries() {
        let mut t = RemappingTable::new();
        assert_eq!(t.approx_bytes(), 0);
        for i in 0..10 {
            t.record_move(ObjectId(i), OsdId(0));
        }
        assert_eq!(t.approx_bytes(), 10 * RemappingTable::ENTRY_BYTES);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut t = RemappingTable::new();
        t.record_move(ObjectId(1), OsdId(2));
        t.record_move(ObjectId(3), OsdId(4));
        let mut entries: Vec<_> = t.iter().collect();
        entries.sort();
        assert_eq!(
            entries,
            vec![(ObjectId(1), OsdId(2)), (ObjectId(3), OsdId(4))]
        );
    }
}

//! The migration-policy interface between the cluster simulator and the
//! schemes under study (EDM-HDF, EDM-CDF, CMT, and the no-op baseline).
//!
//! The cluster drives a [`Migrator`] through three hooks:
//!
//! * [`Migrator::on_access`] — every object-level I/O (the EDM access
//!   tracker updates object temperature here, Fig. 4);
//! * [`Migrator::on_tick`] — the wear-monitor tick, every simulated
//!   minute (§III.B.2);
//! * [`Migrator::plan`] — asked at the migration point; returns the data
//!   movement actions, each "indicated by a triple (oid, source_id,
//!   dest_id)" (§III.B.5).

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

use crate::ids::{GroupId, ObjectId, OsdId};

/// Kind of access presented to the policy's tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    Read,
    Write,
}

/// One object access, as seen by the access tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessEvent {
    pub now_us: u64,
    pub object: ObjectId,
    pub kind: AccessKind,
    /// Flash pages touched by the access.
    pub pages: u64,
}

/// Per-OSD state exposed to policies at planning time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OsdView {
    pub osd: OsdId,
    pub group: GroupId,
    /// Host page writes since the start of the measurement period — the
    /// `Wc` of the wear model (Eq. 1/4).
    pub wc_pages: u64,
    /// Disk utilization `u` of the wear model (live bytes / capacity).
    pub utilization: f64,
    /// Actual measured block erases so far (ground truth; policies use the
    /// *model* instead, the simulator uses this for reporting).
    pub measured_erases: u64,
    /// EWMA of serviced I/O latency, µs — CMT's load factor (§V intro).
    pub ewma_latency_us: f64,
    /// Free exported bytes remaining on the device.
    pub free_bytes: u64,
    /// Exported capacity in bytes.
    pub capacity_bytes: u64,
}

/// Per-object state exposed to policies at planning time.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ObjectView {
    pub object: ObjectId,
    /// Where the object currently lives (after any prior remapping).
    pub osd: OsdId,
    pub size_bytes: u64,
    /// True if the object already has a remapping-table entry; §III.C
    /// prefers re-migrating those to bound table growth.
    pub remapped: bool,
}

/// Snapshot handed to [`Migrator::plan`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterView {
    pub now_us: u64,
    pub page_size: u64,
    /// Flash pages per block (`Np` of Eq. 1).
    pub pages_per_block: u32,
    pub osds: Vec<OsdView>,
    pub objects: Vec<ObjectView>,
}

impl ClusterView {
    pub fn osd(&self, id: OsdId) -> &OsdView {
        &self.osds[id.0 as usize]
    }

    /// Objects currently living on `osd`.
    pub fn objects_on(&self, osd: OsdId) -> impl Iterator<Item = &ObjectView> {
        self.objects.iter().filter(move |o| o.osd == osd)
    }
}

/// One migration action — the paper's `(oid, source_id, dest_id)` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveAction {
    pub object: ObjectId,
    pub source: OsdId,
    pub dest: OsdId,
}

/// A migration scheme, driven by the cluster simulator.
pub trait Migrator {
    /// Human-readable policy name used in reports ("Baseline", "CMT",
    /// "EDM-HDF", "EDM-CDF").
    fn name(&self) -> &str;

    /// Called for every object-level I/O the cluster services.
    fn on_access(&mut self, _event: AccessEvent) {}

    /// Called every wear-monitor tick (§III.B.2: every simulated minute).
    fn on_tick(&mut self, _now_us: u64) {}

    /// Called at the migration point; returns the movement triples (empty
    /// = no migration). `view.osds[i].wc_pages` covers the measurement
    /// window chosen by the simulator.
    fn plan(&mut self, view: &ClusterView) -> Vec<MoveAction>;

    /// [`plan`](Self::plan) with an observability sink. The engine always
    /// calls this entry point; policies that journal their decision
    /// process (trigger evaluations, wear-model inputs, chosen plans)
    /// override it and make `plan` delegate here with a no-op recorder.
    /// Recording must be read-only: the returned plan is identical at
    /// every obs level.
    fn plan_obs(
        &mut self,
        view: &ClusterView,
        _obs: &mut dyn edm_obs::Recorder,
    ) -> Vec<MoveAction> {
        self.plan(view)
    }

    /// Called when the simulator closes a measurement window (continuous
    /// mode resets the per-window write counters each wear tick so the
    /// policy sees per-period rates, §III.B.2). Policies with their own
    /// windowed counters reset them here.
    fn on_window_reset(&mut self) {}

    /// Whether requests to an object must block while it is in flight.
    /// EDM blocks ("all the requests related to the objects being moved
    /// are blocked", §V.D); Sorrento-style CMT copies lazily and keeps
    /// serving from the source, so it overrides this to `false`.
    fn blocking_moves(&self) -> bool {
        true
    }

    /// Whether this policy's decisions are invariant under group-sharded
    /// parallel execution: it never plans a move across placement groups
    /// in different components, and its per-access state updates commute
    /// across components (so replaying buffered accesses in shard order at
    /// each barrier reproduces the sequential state exactly). Policies
    /// return `false` (the safe default) unless they can prove both; the
    /// engine silently falls back to the sequential path when this is
    /// `false` and `SimOptions::shards` asks for parallelism.
    fn parallel_safe(&self) -> bool {
        false
    }

    /// Serializes the policy's mutable state into a checkpoint. Stateless
    /// policies keep the default no-op; stateful ones (the EDM access
    /// tracker) must write everything [`load_state`](Self::load_state)
    /// needs to continue bit-identically.
    fn save_state(&self, _w: &mut SnapWriter) {}

    /// Restores state written by [`save_state`](Self::save_state). The
    /// engine only resumes a checkpoint whose recorded policy name matches
    /// this policy, so the byte layouts always agree.
    fn load_state(&mut self, _r: &mut SnapReader) {}
}

impl Snapshot for MoveAction {
    fn save(&self, w: &mut SnapWriter) {
        self.object.save(w);
        self.source.save(w);
        self.dest.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        MoveAction {
            object: ObjectId::load(r),
            source: OsdId::load(r),
            dest: OsdId::load(r),
        }
    }
}

/// The paper's baseline: hash placement, never migrates.
#[derive(Debug, Default, Clone)]
pub struct NoMigration;

impl Migrator for NoMigration {
    fn name(&self) -> &str {
        "Baseline"
    }

    fn plan(&mut self, _view: &ClusterView) -> Vec<MoveAction> {
        Vec::new()
    }

    fn parallel_safe(&self) -> bool {
        true // plans nothing and keeps no state
    }
}

/// Validates a plan against structural rules; the simulator refuses plans
/// that violate them. Returns the first violation.
pub fn validate_plan(
    plan: &[MoveAction],
    view: &ClusterView,
    intra_group_only: bool,
    group_of: impl Fn(OsdId) -> GroupId,
) -> Result<(), String> {
    let mut seen = std::collections::HashSet::new();
    for (i, m) in plan.iter().enumerate() {
        if m.source == m.dest {
            return Err(format!("action {i}: source == dest ({})", m.source));
        }
        if !seen.insert(m.object) {
            return Err(format!("action {i}: object {} moved twice", m.object));
        }
        let obj = view
            .objects
            .iter()
            .find(|o| o.object == m.object)
            .ok_or_else(|| format!("action {i}: unknown object {}", m.object))?;
        if obj.osd != m.source {
            return Err(format!(
                "action {i}: object {} lives on {}, not {}",
                m.object, obj.osd, m.source
            ));
        }
        if intra_group_only && group_of(m.source) != group_of(m.dest) {
            return Err(format!(
                "action {i}: cross-group move {} -> {}",
                m.source, m.dest
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> ClusterView {
        ClusterView {
            now_us: 0,
            page_size: 4096,
            pages_per_block: 32,
            osds: (0..4)
                .map(|i| OsdView {
                    osd: OsdId(i),
                    group: GroupId(i % 2),
                    wc_pages: 0,
                    utilization: 0.5,
                    measured_erases: 0,
                    ewma_latency_us: 0.0,
                    free_bytes: 1 << 20,
                    capacity_bytes: 1 << 21,
                })
                .collect(),
            objects: vec![
                ObjectView {
                    object: ObjectId(1),
                    osd: OsdId(0),
                    size_bytes: 4096,
                    remapped: false,
                },
                ObjectView {
                    object: ObjectId(2),
                    osd: OsdId(1),
                    size_bytes: 4096,
                    remapped: true,
                },
            ],
        }
    }

    fn group(o: OsdId) -> GroupId {
        GroupId(o.0 % 2)
    }

    #[test]
    fn baseline_never_plans() {
        let mut b = NoMigration;
        assert_eq!(b.name(), "Baseline");
        assert!(b.plan(&view()).is_empty());
    }

    #[test]
    fn valid_intra_group_plan_passes() {
        let plan = vec![MoveAction {
            object: ObjectId(1),
            source: OsdId(0),
            dest: OsdId(2),
        }];
        validate_plan(&plan, &view(), true, group).unwrap();
    }

    #[test]
    fn cross_group_move_rejected() {
        let plan = vec![MoveAction {
            object: ObjectId(1),
            source: OsdId(0),
            dest: OsdId(1),
        }];
        assert!(validate_plan(&plan, &view(), true, group)
            .unwrap_err()
            .contains("cross-group"));
        // ...but allowed when the rule is off (CMT has no group rule).
        validate_plan(&plan, &view(), false, group).unwrap();
    }

    #[test]
    fn wrong_source_rejected() {
        let plan = vec![MoveAction {
            object: ObjectId(2),
            source: OsdId(0),
            dest: OsdId(2),
        }];
        assert!(validate_plan(&plan, &view(), true, group)
            .unwrap_err()
            .contains("lives on"));
    }

    #[test]
    fn duplicate_object_rejected() {
        let m = MoveAction {
            object: ObjectId(1),
            source: OsdId(0),
            dest: OsdId(2),
        };
        assert!(validate_plan(&[m, m], &view(), true, group)
            .unwrap_err()
            .contains("moved twice"));
    }

    #[test]
    fn self_move_rejected() {
        let plan = vec![MoveAction {
            object: ObjectId(1),
            source: OsdId(0),
            dest: OsdId(0),
        }];
        assert!(validate_plan(&plan, &view(), false, group)
            .unwrap_err()
            .contains("source == dest"));
    }

    #[test]
    fn objects_on_filters_by_osd() {
        let v = view();
        assert_eq!(v.objects_on(OsdId(0)).count(), 1);
        assert_eq!(v.objects_on(OsdId(3)).count(), 0);
    }
}

//! Logical-space extent allocator for one OSD.
//!
//! Objects stored on an OSD occupy contiguous byte extents of its SSD's
//! exported logical space. Allocation is first-fit over a sorted free
//! list with coalescing on free — simple, deterministic, and fragmentation
//! behaviour good enough for object-sized allocations.

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

/// A contiguous byte range `[start, start + len)` of logical space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent {
    pub start: u64,
    pub len: u64,
}

impl Extent {
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// First-fit extent allocator over `[0, capacity)`.
#[derive(Debug, Clone)]
pub struct ExtentAllocator {
    capacity: u64,
    /// Free extents sorted by start, non-overlapping, non-adjacent.
    free: Vec<Extent>,
}

impl ExtentAllocator {
    pub fn new(capacity: u64) -> Self {
        ExtentAllocator {
            capacity,
            free: if capacity > 0 {
                vec![Extent {
                    start: 0,
                    len: capacity,
                }]
            } else {
                Vec::new()
            },
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|e| e.len).sum()
    }

    pub fn used_bytes(&self) -> u64 {
        self.capacity - self.free_bytes()
    }

    /// Allocates `len` contiguous bytes, first-fit. Returns `None` when no
    /// free extent is large enough.
    pub fn alloc(&mut self, len: u64) -> Option<Extent> {
        if len == 0 {
            return Some(Extent { start: 0, len: 0 });
        }
        let idx = self.free.iter().position(|e| e.len >= len)?;
        let e = &mut self.free[idx];
        let out = Extent {
            start: e.start,
            len,
        };
        if e.len == len {
            self.free.remove(idx);
        } else {
            e.start += len;
            e.len -= len;
        }
        Some(out)
    }

    /// Returns an extent to the free list, coalescing with neighbours.
    ///
    /// # Panics
    /// Panics if the extent is out of bounds or overlaps free space
    /// (double free).
    pub fn free(&mut self, extent: Extent) {
        if extent.len == 0 {
            return;
        }
        assert!(
            extent.end() <= self.capacity,
            "freeing beyond capacity: {extent:?}"
        );
        let idx = self.free.partition_point(|e| e.start < extent.start);
        if idx > 0 {
            assert!(
                self.free[idx - 1].end() <= extent.start,
                "double free: {extent:?} overlaps {:?}",
                self.free[idx - 1]
            );
        }
        if idx < self.free.len() {
            assert!(
                extent.end() <= self.free[idx].start,
                "double free: {extent:?} overlaps {:?}",
                self.free[idx]
            );
        }
        self.free.insert(idx, extent);
        // Coalesce with the right neighbour, then the left.
        if idx + 1 < self.free.len() && self.free[idx].end() == self.free[idx + 1].start {
            self.free[idx].len += self.free[idx + 1].len;
            self.free.remove(idx + 1);
        }
        if idx > 0 && self.free[idx - 1].end() == self.free[idx].start {
            self.free[idx - 1].len += self.free[idx].len;
            self.free.remove(idx);
        }
    }
}

impl Snapshot for Extent {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.start);
        w.put_u64(self.len);
    }
    fn load(r: &mut SnapReader) -> Self {
        Extent {
            start: r.take_u64(),
            len: r.take_u64(),
        }
    }
}

impl Snapshot for ExtentAllocator {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.capacity);
        self.free.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        let a = ExtentAllocator {
            capacity: r.take_u64(),
            free: Vec::load(r),
        };
        if !r.failed() {
            // The free list's invariants (sorted, non-overlapping,
            // non-adjacent, in bounds) are what `free()` relies on.
            let ok = a.free.iter().all(|e| e.len > 0 && e.end() <= a.capacity)
                // edm-audit: allow(panic.slice_index, "windows(2) yields exactly two elements per window")
                && a.free.windows(2).all(|p| p[0].end() < p[1].start);
            if !ok {
                r.corrupt("extent free list violates its invariants");
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip_restores_capacity() {
        let mut a = ExtentAllocator::new(1000);
        let e1 = a.alloc(100).unwrap();
        let e2 = a.alloc(200).unwrap();
        assert_eq!(a.used_bytes(), 300);
        a.free(e1);
        a.free(e2);
        assert_eq!(a.free_bytes(), 1000);
        // Fully coalesced back to one extent: a max-size alloc succeeds.
        assert!(a.alloc(1000).is_some());
    }

    #[test]
    fn first_fit_reuses_freed_holes() {
        let mut a = ExtentAllocator::new(300);
        let e1 = a.alloc(100).unwrap();
        let _e2 = a.alloc(100).unwrap();
        a.free(e1);
        let e3 = a.alloc(50).unwrap();
        assert_eq!(e3.start, 0, "first fit should reuse the hole at 0");
    }

    #[test]
    fn alloc_fails_when_fragmented() {
        let mut a = ExtentAllocator::new(300);
        let e1 = a.alloc(100).unwrap();
        let e2 = a.alloc(100).unwrap();
        let _e3 = a.alloc(100).unwrap();
        a.free(e1);
        a.free(Extent {
            start: e2.start + 50,
            len: 50,
        });
        // 150 bytes free but max contiguous hole is 100.
        assert_eq!(a.free_bytes(), 150);
        assert!(a.alloc(150).is_none());
        assert!(a.alloc(100).is_some());
    }

    #[test]
    fn coalescing_merges_in_both_directions() {
        let mut a = ExtentAllocator::new(300);
        let e1 = a.alloc(100).unwrap();
        let e2 = a.alloc(100).unwrap();
        let e3 = a.alloc(100).unwrap();
        a.free(e1);
        a.free(e3);
        a.free(e2); // merges left and right into one 300-byte extent
        assert!(a.alloc(300).is_some());
    }

    #[test]
    fn zero_length_ops_are_noops() {
        let mut a = ExtentAllocator::new(10);
        let e = a.alloc(0).unwrap();
        assert_eq!(e.len, 0);
        a.free(e);
        assert_eq!(a.free_bytes(), 10);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = ExtentAllocator::new(100);
        let e = a.alloc(10).unwrap();
        a.free(e);
        a.free(e);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn free_out_of_bounds_panics() {
        let mut a = ExtentAllocator::new(100);
        a.free(Extent { start: 90, len: 20 });
    }

    #[test]
    fn zero_capacity_allocator() {
        let mut a = ExtentAllocator::new(0);
        assert!(a.alloc(1).is_none());
        assert_eq!(a.free_bytes(), 0);
    }
}

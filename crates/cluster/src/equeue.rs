//! Pending-event queues for the replay engine.
//!
//! The engine schedules events in `(at, seq, item)` order: virtual time
//! first, then the strictly increasing issue sequence as the
//! deterministic tie-break. [`EventQueue`] abstracts the container so two
//! interchangeable implementations stay differential-testable:
//!
//! * [`HeapQueue`] — the classic `BinaryHeap<Reverse<..>>`: O(log n) per
//!   operation, the reference implementation;
//! * [`CalendarQueue`] — a calendar queue (Brown, CACM 1988): a wheel of
//!   time-bucketed slots plus a far-future overflow heap. Pushes land in
//!   their bucket unsorted (O(1)); only the bucket currently being
//!   drained is kept sorted, so the amortized cost per event is O(1) for
//!   the hold-model workloads a discrete-event simulation produces.
//!
//! Both yield the *exact same total order* — `(at, seq)` pairs are unique
//! within an engine — and both export the canonical ascending event list
//! used by the checkpoint format, so swapping implementations cannot
//! perturb a digest or a snapshot byte.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A pending-event container ordered by `(at, seq)`.
///
/// `(at, seq)` pairs must be unique (the engine's `seq` is strictly
/// increasing), so the order is total and implementation-independent.
pub trait EventQueue<T> {
    /// Inserts an item scheduled at virtual time `at`.
    fn push(&mut self, at: u64, seq: u64, item: T);
    /// Removes and returns the smallest `(at, seq)` entry.
    fn pop(&mut self) -> Option<(u64, u64, T)>;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// All pending entries, ascending by `(at, seq)` — the canonical
    /// encoding checkpoints serialize.
    fn to_sorted_vec(&self) -> Vec<(u64, u64, T)>
    where
        T: Clone;
}

/// The reference implementation: a plain binary min-heap.
#[derive(Debug, Default)]
pub struct HeapQueue<T: Ord> {
    heap: BinaryHeap<Reverse<(u64, u64, T)>>,
}

impl<T: Ord> HeapQueue<T> {
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T: Ord> EventQueue<T> for HeapQueue<T> {
    fn push(&mut self, at: u64, seq: u64, item: T) {
        self.heap.push(Reverse((at, seq, item)));
    }
    fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.heap.pop().map(|Reverse(t)| t)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
    fn to_sorted_vec(&self) -> Vec<(u64, u64, T)>
    where
        T: Clone,
    {
        let mut v: Vec<(u64, u64, T)> = self.heap.iter().map(|Reverse(t)| t.clone()).collect();
        v.sort_unstable_by_key(|a| (a.0, a.1));
        v
    }
}

/// Far-future overflow entry, ordered by `(at, seq)` only — the payload
/// never participates in comparisons, so `T` needs no `Ord`.
struct FarEntry<T>(u64, u64, T);

impl<T> PartialEq for FarEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0, self.1) == (other.0, other.1)
    }
}
impl<T> Eq for FarEntry<T> {}
impl<T> PartialOrd for FarEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for FarEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0, self.1).cmp(&(other.0, other.1))
    }
}

/// Initial and minimum number of wheel slots (power of two).
const MIN_SLOTS: usize = 64;
/// Maximum number of wheel slots.
const MAX_SLOTS: usize = 1 << 16;
/// Grow the wheel when occupancy exceeds this many items per slot.
const GROW_PER_SLOT: usize = 4;
/// Largest bucket width, µs; caps the rebuild arithmetic.
const MAX_WIDTH: u64 = 1 << 30;

/// A calendar queue: O(1) amortized push/pop under the hold model.
///
/// Invariants (with `cur` the bucket index `last popped at / width`):
/// * `cur_run` holds exactly the pending items of bucket `cur`, sorted;
/// * `wheel[b % nslots]` holds the items of bucket `b` for
///   `cur < b < cur + nslots` (at most one live bucket per slot, so slots
///   never mix epochs);
/// * `far` holds everything at `cur + nslots` buckets or later.
///
/// The wheel resizes by content (occupancy thresholds on `len`), which is
/// a pure function of the operation sequence — resizing can never
/// introduce nondeterminism.
pub struct CalendarQueue<T> {
    width: u64,
    nslots: usize,
    wheel: Vec<Vec<(u64, u64, T)>>,
    /// Items currently in `wheel` (excludes `cur_run` and `far`).
    wheel_count: usize,
    cur_bucket: u64,
    cur_run: VecDeque<(u64, u64, T)>,
    far: BinaryHeap<Reverse<FarEntry<T>>>,
    last_pop_at: u64,
    len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<T> CalendarQueue<T> {
    pub fn new() -> Self {
        CalendarQueue {
            width: 256,
            nslots: MIN_SLOTS,
            wheel: (0..MIN_SLOTS).map(|_| Vec::new()).collect(),
            wheel_count: 0,
            cur_bucket: 0,
            cur_run: VecDeque::new(),
            far: BinaryHeap::new(),
            last_pop_at: 0,
            len: 0,
        }
    }

    /// Files one entry into `cur_run` / the wheel / the far heap according
    /// to its bucket. Does not touch `len`.
    fn place(&mut self, at: u64, seq: u64, item: T) {
        // A push earlier than the current bucket would mean time ran
        // backwards; the engine asserts `at >= now`, so clamping into the
        // current run preserves order for any input that obeys it.
        let b = (at / self.width).max(self.cur_bucket);
        if b == self.cur_bucket {
            let pos = self.cur_run.partition_point(|e| (e.0, e.1) < (at, seq));
            self.cur_run.insert(pos, (at, seq, item));
        } else if b - self.cur_bucket < self.nslots as u64 {
            self.wheel[(b % self.nslots as u64) as usize].push((at, seq, item));
            self.wheel_count += 1;
        } else {
            self.far.push(Reverse(FarEntry(at, seq, item)));
        }
    }

    /// Rebuilds the wheel with `nslots` slots and a width derived from the
    /// pending items' span. Content-preserving and purely a function of
    /// the queue's current state.
    fn rebuild(&mut self, nslots: usize) {
        let mut items: Vec<(u64, u64, T)> = Vec::with_capacity(self.len);
        items.extend(self.cur_run.drain(..));
        for slot in &mut self.wheel {
            items.append(slot);
        }
        while let Some(Reverse(FarEntry(at, seq, item))) = self.far.pop() {
            items.push((at, seq, item));
        }
        self.wheel_count = 0;
        self.nslots = nslots;
        self.wheel = (0..nslots).map(|_| Vec::new()).collect();
        if !items.is_empty() {
            let min = items.iter().map(|e| e.0).min().unwrap_or(0);
            let max = items.iter().map(|e| e.0).max().unwrap_or(0);
            self.width = ((max - min) / items.len() as u64).clamp(1, MAX_WIDTH);
        }
        self.cur_bucket = self.last_pop_at / self.width;
        for (at, seq, item) in items {
            self.place(at, seq, item);
        }
    }

    /// Moves far-heap entries that now fit the wheel's horizon in.
    fn drain_far_into_wheel(&mut self) {
        let horizon = self.cur_bucket + self.nslots as u64;
        while let Some(Reverse(FarEntry(at, _, _))) = self.far.peek() {
            if at / self.width >= horizon {
                break;
            }
            // edm-audit: allow(panic.expect, "peek on the line above proves the heap is non-empty")
            let Reverse(FarEntry(at, seq, item)) = self.far.pop().expect("peeked entry");
            self.place(at, seq, item);
        }
    }

    /// Loads the slot of `cur_bucket` into the sorted current run.
    fn load_current_slot(&mut self) {
        let slot = &mut self.wheel[(self.cur_bucket % self.nslots as u64) as usize];
        if slot.is_empty() {
            return;
        }
        let mut items = std::mem::take(slot);
        self.wheel_count -= items.len();
        items.sort_unstable_by_key(|a| (a.0, a.1));
        self.cur_run = items.into();
    }
}

impl<T> EventQueue<T> for CalendarQueue<T> {
    fn push(&mut self, at: u64, seq: u64, item: T) {
        self.place(at, seq, item);
        self.len += 1;
        if self.len > self.nslots * GROW_PER_SLOT && self.nslots < MAX_SLOTS {
            self.rebuild(self.nslots * 2);
        }
    }

    fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(e) = self.cur_run.pop_front() {
                self.len -= 1;
                self.last_pop_at = e.0;
                if self.len * 8 < self.nslots && self.nslots > MIN_SLOTS {
                    self.rebuild(self.nslots / 2);
                }
                return Some(e);
            }
            if self.wheel_count == 0 {
                // Nothing inside the horizon: jump straight to the far
                // heap's minimum instead of sweeping empty slots.
                // edm-audit: allow(panic.expect, "len > 0 with empty run and wheel implies a far entry")
                let Reverse(FarEntry(at, _, _)) = self.far.peek().expect("pending far entry");
                self.cur_bucket = at / self.width;
            } else {
                self.cur_bucket += 1;
            }
            self.drain_far_into_wheel();
            self.load_current_slot();
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn to_sorted_vec(&self) -> Vec<(u64, u64, T)>
    where
        T: Clone,
    {
        let mut v: Vec<(u64, u64, T)> = Vec::with_capacity(self.len);
        v.extend(self.cur_run.iter().cloned());
        for slot in &self.wheel {
            v.extend(slot.iter().cloned());
        }
        v.extend(
            self.far
                .iter()
                .map(|Reverse(FarEntry(at, seq, item))| (*at, *seq, item.clone())),
        );
        v.sort_unstable_by_key(|a| (a.0, a.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream for exercising both queues.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    fn drain_all<Q: EventQueue<u32>>(q: &mut Q) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn empty_queues_pop_none() {
        assert_eq!(HeapQueue::<u32>::new().pop(), None);
        assert!(CalendarQueue::<u32>::new().pop().is_none());
        assert!(CalendarQueue::<u32>::new().is_empty());
    }

    #[test]
    fn same_time_orders_by_seq() {
        let mut q = CalendarQueue::new();
        q.push(100, 3, 30u32);
        q.push(100, 1, 10);
        q.push(100, 2, 20);
        assert_eq!(
            drain_all(&mut q),
            vec![(100, 1, 10), (100, 2, 20), (100, 3, 30)]
        );
    }

    #[test]
    fn hold_model_matches_heap() {
        // The engine's dominant pattern: pop one, push a successor a
        // short (pseudo-random) delta later, with occasional far-future
        // ticks thrown in.
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let mut rng = Lcg(7);
        let mut seq = 0u64;
        for i in 0..512u64 {
            seq += 1;
            cal.push(i, seq, i as u32);
            heap.push(i, seq, i as u32);
        }
        let mut now = 0u64;
        for step in 0..20_000u32 {
            let a = cal.pop().unwrap();
            let b = heap.pop().unwrap();
            assert_eq!(a, b, "diverged at step {step}");
            assert!(a.0 >= now, "time went backwards");
            now = a.0;
            seq += 1;
            let delta = if step % 997 == 0 {
                60_000_000 // far-future wear tick
            } else {
                rng.next() % 2000
            };
            cal.push(now + delta, seq, step);
            heap.push(now + delta, seq, step);
            assert_eq!(cal.len(), heap.len());
        }
        assert_eq!(drain_all(&mut cal), drain_all(&mut heap));
    }

    #[test]
    fn burst_then_sparse_resizes_without_reordering() {
        // Grow past several rebuilds, then drain down through shrink
        // rebuilds; order must stay exact throughout.
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let mut rng = Lcg(99);
        for seq in 0..5000u64 {
            let at = rng.next() % 1_000_000;
            cal.push(at, seq, seq as u32);
            heap.push(at, seq, seq as u32);
        }
        assert_eq!(drain_all(&mut cal), drain_all(&mut heap));
    }

    #[test]
    fn all_events_at_one_instant() {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for seq in 0..300u64 {
            cal.push(42, seq, seq as u32);
            heap.push(42, seq, seq as u32);
        }
        // Width collapses to 1 on rebuild; a far tick must still surface
        // in order via the empty-wheel jump.
        cal.push(100_000_000, 1000, 7);
        heap.push(100_000_000, 1000, 7);
        assert_eq!(drain_all(&mut cal), drain_all(&mut heap));
    }

    #[test]
    fn sorted_export_matches_heap_export() {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let mut rng = Lcg(3);
        for seq in 0..700u64 {
            let at = rng.next() % 500_000;
            cal.push(at, seq, (seq % 91) as u32);
            heap.push(at, seq, (seq % 91) as u32);
        }
        // Interleave some pops so the export covers run/wheel/far state.
        for _ in 0..123 {
            assert_eq!(cal.pop(), heap.pop());
        }
        assert_eq!(cal.to_sorted_vec(), heap.to_sorted_vec());
    }

    #[test]
    fn export_then_rebuild_is_lossless() {
        // A queue reconstructed from its canonical export (the checkpoint
        // path) pops the same sequence as the original.
        let mut cal = CalendarQueue::new();
        let mut rng = Lcg(11);
        for seq in 0..400u64 {
            cal.push(rng.next() % 100_000, seq, seq as u32);
        }
        for _ in 0..57 {
            cal.pop();
        }
        let exported = cal.to_sorted_vec();
        let mut rebuilt = CalendarQueue::new();
        for &(at, seq, item) in &exported {
            rebuilt.push(at, seq, item);
        }
        assert_eq!(rebuilt.len(), cal.len());
        assert_eq!(drain_all(&mut rebuilt), drain_all(&mut cal));
    }
}

//! The metadata catalog (the MDS's file table): file → objects, object →
//! current OSD (hash placement overlaid by the remapping table).

use std::collections::BTreeMap;

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

use edm_workload::FileId;

use crate::ids::{ObjectId, OsdId};
use crate::placement::Placement;
use crate::raid::StripeLayout;
use crate::remap::RemappingTable;

/// Metadata of one file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileMeta {
    pub file: FileId,
    pub size: u64,
    /// The k object ids, in stripe order.
    pub objects: Vec<ObjectId>,
    /// Size of each object (same for all k, see
    /// [`StripeLayout::object_size`]).
    pub object_size: u64,
}

/// The MDS's view of the namespace.
#[derive(Debug, Clone)]
pub struct Catalog {
    placement: Placement,
    layout: StripeLayout,
    files: BTreeMap<FileId, FileMeta>,
    remap: RemappingTable,
}

impl Catalog {
    pub fn new(placement: Placement, layout: StripeLayout) -> Self {
        assert_eq!(
            placement.objects_per_file, layout.k,
            "placement and stripe layout must agree on k"
        );
        Catalog {
            placement,
            layout,
            files: BTreeMap::new(),
            remap: RemappingTable::new(),
        }
    }

    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    pub fn layout(&self) -> &StripeLayout {
        &self.layout
    }

    pub fn remap(&self) -> &RemappingTable {
        &self.remap
    }

    pub fn remap_mut(&mut self) -> &mut RemappingTable {
        &mut self.remap
    }

    pub fn file(&self, file: FileId) -> Option<&FileMeta> {
        self.files.get(&file)
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    pub fn total_objects(&self) -> u64 {
        self.files.len() as u64 * self.placement.objects_per_file as u64
    }

    pub fn files(&self) -> impl Iterator<Item = &FileMeta> {
        self.files.values()
    }

    /// Registers a file of `size` bytes, allocating its k object ids.
    ///
    /// # Panics
    /// Panics if the file already exists.
    pub fn create_file(&mut self, file: FileId, size: u64) -> &FileMeta {
        assert!(
            !self.files.contains_key(&file),
            "file {file:?} already exists"
        );
        let objects: Vec<ObjectId> = (0..self.placement.objects_per_file)
            .map(|i| self.placement.object_id(file, i))
            .collect();
        let meta = FileMeta {
            file,
            size,
            objects,
            object_size: self.layout.object_size(size),
        };
        self.files.insert(file, meta);
        &self.files[&file]
    }

    /// Home OSD (hash placement, ignoring remapping) of an object.
    pub fn home_of(&self, object: ObjectId) -> OsdId {
        let (file, index) = self.placement.object_owner(object);
        self.placement.home_osd(file, index)
    }

    /// Current OSD of an object: remapping-table overlay over hash
    /// placement.
    pub fn locate(&self, object: ObjectId) -> OsdId {
        self.remap
            .lookup(object)
            .unwrap_or_else(|| self.home_of(object))
    }

    /// Records a migration in the remapping table.
    pub fn record_move(&mut self, object: ObjectId, dest: OsdId) {
        let home = self.home_of(object);
        self.remap.record_move_with_home(object, dest, home);
    }
}

impl Snapshot for FileMeta {
    fn save(&self, w: &mut SnapWriter) {
        self.file.save(w);
        w.put_u64(self.size);
        self.objects.save(w);
        w.put_u64(self.object_size);
    }
    fn load(r: &mut SnapReader) -> Self {
        FileMeta {
            file: FileId::load(r),
            size: r.take_u64(),
            objects: Vec::load(r),
            object_size: r.take_u64(),
        }
    }
}

impl Snapshot for Catalog {
    fn save(&self, w: &mut SnapWriter) {
        self.placement.save(w);
        self.layout.save(w);
        self.files.save(w);
        self.remap.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        let c = Catalog {
            placement: Placement::load(r),
            layout: StripeLayout::load(r),
            files: BTreeMap::load(r),
            remap: RemappingTable::load(r),
        };
        if !r.failed() && c.placement.objects_per_file != c.layout.k {
            r.corrupt("placement and stripe layout disagree on k");
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::new(Placement::paper(16), StripeLayout::paper(4))
    }

    #[test]
    fn create_file_allocates_k_objects() {
        let mut c = catalog();
        let meta = c.create_file(FileId(3), 1_000_000).clone();
        assert_eq!(meta.objects.len(), 4);
        assert_eq!(meta.objects[0], ObjectId(12));
        assert_eq!(meta.object_size, c.layout().object_size(1_000_000));
        assert_eq!(c.file_count(), 1);
        assert_eq!(c.total_objects(), 4);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_file_panics() {
        let mut c = catalog();
        c.create_file(FileId(1), 10);
        c.create_file(FileId(1), 10);
    }

    #[test]
    fn locate_follows_placement_then_remap() {
        let mut c = catalog();
        c.create_file(FileId(3), 1000);
        let obj = c.file(FileId(3)).unwrap().objects[1].to_owned();
        assert_eq!(c.locate(obj), OsdId(4)); // inode 3 + index 1
        c.record_move(obj, OsdId(8));
        assert_eq!(c.locate(obj), OsdId(8));
        assert_eq!(c.remap().len(), 1);
    }

    #[test]
    fn moving_back_home_clears_entry() {
        let mut c = catalog();
        c.create_file(FileId(3), 1000);
        let obj = c.file(FileId(3)).unwrap().objects[0].to_owned();
        let home = c.home_of(obj);
        c.record_move(obj, OsdId(7));
        c.record_move(obj, home);
        assert_eq!(c.remap().len(), 0);
        assert_eq!(c.locate(obj), home);
    }

    #[test]
    #[should_panic(expected = "must agree on k")]
    fn mismatched_k_panics() {
        Catalog::new(Placement::paper(16), StripeLayout::paper(3));
    }
}

//! Run metrics: aggregate throughput (Fig. 5), windowed mean response
//! time (Fig. 7), and per-OSD wear summaries (Fig. 1, Fig. 6).

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

use edm_ssd::WearStats;

/// Mean response time of file operations completed in one reporting
/// window (Fig. 7 plots one point per 3-minute window).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseWindow {
    /// Window start, µs of virtual time.
    pub start_us: u64,
    pub completed_ops: u64,
    pub mean_response_us: f64,
}

/// Accumulates response times into fixed-width windows.
#[derive(Debug, Clone)]
pub struct ResponseSeries {
    window_us: u64,
    /// (sum of response times, count) per window index.
    buckets: Vec<(f64, u64)>,
}

impl ResponseSeries {
    /// Hard cap on the number of windows. A single op completing at a
    /// huge virtual time used to resize the vector to its window index —
    /// an unbounded (potentially multi-GiB) allocation; ops past the cap
    /// now fold into the last window instead.
    pub const MAX_WINDOWS: usize = 1 << 16;

    /// Windows are grown in chunks of this many entries so a long quiet
    /// tail costs one resize, not one per window.
    const GROW_CHUNK: usize = 1024;

    pub fn new(window_us: u64) -> Self {
        assert!(window_us > 0);
        ResponseSeries {
            window_us,
            buckets: Vec::new(),
        }
    }

    /// Records one completed file op.
    pub fn record(&mut self, completion_us: u64, response_us: u64) {
        // Clamp in u64 before the usize cast: completion_us / window_us
        // can exceed usize::MAX on 32-bit targets.
        let idx = (completion_us / self.window_us).min((Self::MAX_WINDOWS - 1) as u64) as usize;
        if idx >= self.buckets.len() {
            let len = (idx + 1)
                .next_multiple_of(Self::GROW_CHUNK)
                .min(Self::MAX_WINDOWS);
            self.buckets.resize(len, (0.0, 0));
        }
        self.buckets[idx].0 += response_us as f64;
        self.buckets[idx].1 += 1;
    }

    /// Folds another series' buckets into this one, index by index. Used
    /// by the group-sharded runner to reassemble the global series from
    /// per-shard fragments. Response times are integer microseconds and
    /// per-bucket sums stay far below 2^53, so the f64 additions are
    /// exact and the merged series is bit-identical to the sequential one
    /// regardless of merge order.
    pub fn merge_from(&mut self, other: &ResponseSeries) {
        assert_eq!(
            self.window_us, other.window_us,
            "cannot merge response series with different window widths"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), (0.0, 0));
        }
        for (dst, &(sum, n)) in self.buckets.iter_mut().zip(&other.buckets) {
            dst.0 += sum;
            dst.1 += n;
        }
    }

    /// Finished series, one point per window (empty windows yield a point
    /// with zero ops and zero mean, keeping the time axis regular). The
    /// chunked-growth slack past the last recorded window is not
    /// reported, so the series ends at the last completion as before.
    pub fn windows(&self) -> Vec<ResponseWindow> {
        let used = self
            .buckets
            .iter()
            .rposition(|&(_, n)| n > 0)
            .map_or(0, |i| i + 1);
        self.buckets[..used]
            .iter()
            .enumerate()
            .map(|(i, &(sum, n))| ResponseWindow {
                start_us: i as u64 * self.window_us,
                completed_ops: n,
                mean_response_us: if n > 0 { sum / n as f64 } else { 0.0 },
            })
            .collect()
    }
}

/// Log-scale latency histogram: ~5 % relative precision from 1 µs to
/// ~18 minutes in a fixed 512-bucket footprint, good enough for the
/// response-time percentiles a run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// bucket i covers [floor^i, floor^(i+1)) µs with floor = 2^(1/16).
    buckets: Vec<u64>,
    count: u64,
    max_us: u64,
}

impl LatencyHistogram {
    const BUCKETS: usize = 512;
    /// 16 buckets per octave ⇒ ~4.4 % bucket width.
    const PER_OCTAVE: f64 = 16.0;

    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
            max_us: 0,
        }
    }

    fn index(us: u64) -> usize {
        if us <= 1 {
            return 0;
        }
        let idx = ((us as f64).log2() * Self::PER_OCTAVE) as usize;
        idx.min(Self::BUCKETS - 1)
    }

    pub fn record(&mut self, us: u64) {
        self.buckets[Self::index(us)] += 1;
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one, bucket by bucket. Counts
    /// are integers, so the merge is exact and order-independent — the
    /// group-sharded runner relies on that for bit-identical reports.
    pub fn merge_from(&mut self, other: &LatencyHistogram) {
        for (dst, &n) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += n;
        }
        self.count += other.count;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Value at quantile `q` in [0, 1]; 0 when empty. Exact for the
    /// maximum (`q = 1`), bucket-resolution otherwise.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max_us;
        }
        let target = (q * self.count as f64).floor() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > target {
                // Upper edge of bucket i.
                return (2f64.powf((i + 1) as f64 / Self::PER_OCTAVE)) as u64;
            }
        }
        self.max_us
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Snapshot for ResponseSeries {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.window_us);
        self.buckets.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        let window_us = r.take_u64();
        if window_us == 0 {
            r.corrupt("response series window must be positive");
            return ResponseSeries {
                window_us: 1,
                buckets: Vec::new(),
            };
        }
        let buckets = Vec::load(r);
        if buckets.len() > Self::MAX_WINDOWS {
            r.corrupt("response series exceeds its window cap");
        }
        ResponseSeries { window_us, buckets }
    }
}

impl Snapshot for LatencyHistogram {
    fn save(&self, w: &mut SnapWriter) {
        self.buckets.save(w);
        w.put_u64(self.count);
        w.put_u64(self.max_us);
    }
    fn load(r: &mut SnapReader) -> Self {
        let h = LatencyHistogram {
            buckets: Vec::load(r),
            count: r.take_u64(),
            max_us: r.take_u64(),
        };
        if !r.failed() {
            if h.buckets.len() != Self::BUCKETS {
                r.corrupt(format!("latency histogram has {} buckets", h.buckets.len()));
            } else if h.buckets.iter().sum::<u64>() != h.count {
                r.corrupt("latency histogram count disagrees with its buckets");
            }
        }
        h
    }
}

/// Wear summary of one OSD at the end of a run (Fig. 1's two panels).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OsdWearSummary {
    pub osd: u32,
    pub erase_count: u64,
    pub write_pages: u64,
    pub gc_page_moves: u64,
    pub utilization: f64,
    /// Total device-busy time of the OSD over the run, µs (service time
    /// including GC stalls); identifies the bottleneck device.
    pub busy_us: u64,
    /// Deepest request queue observed at this OSD during the run.
    pub peak_queue_depth: u64,
}

/// Everything a simulation run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    pub trace: String,
    pub policy: String,
    pub osds: u32,
    /// Completed file operations (open/close/read/write all count; the
    /// paper measures "the number of completed file operations", §V.B).
    pub completed_ops: u64,
    /// Virtual duration of the replay, µs.
    pub duration_us: u64,
    /// Mean response time over the whole run, µs.
    pub mean_response_us: f64,
    /// Response-time percentiles over the whole run, µs: (p50, p95, p99).
    pub response_percentiles_us: (u64, u64, u64),
    /// Windowed response-time series (Fig. 7).
    pub response_windows: Vec<ResponseWindow>,
    /// Per-OSD wear at end of run (Fig. 1).
    pub per_osd: Vec<OsdWearSummary>,
    /// Objects moved by migration (Fig. 8), counted per move action.
    pub moved_objects: u64,
    /// Distinct objects with remapping entries at end of run (§III.C).
    pub remap_entries: u64,
    /// Total objects in the cluster.
    pub total_objects: u64,
    /// Number of migration rounds that actually fired.
    pub migrations_triggered: u64,
    /// OSDs that failed during the run (injected, §III.D experiments).
    pub failed_osds: Vec<u32>,
    /// Sub-operations served in degraded RAID-5 mode.
    pub degraded_ops: u64,
    /// Sub-operations that hit unrecoverable (multi-failure) data loss.
    pub lost_ops: u64,
    /// Lost objects reconstructed onto surviving group members.
    pub rebuilt_objects: u64,
}

impl RunReport {
    /// Aggregate throughput in file operations per second of virtual time
    /// (Fig. 5's y-axis).
    pub fn throughput_ops_per_sec(&self) -> f64 {
        if self.duration_us == 0 {
            return 0.0;
        }
        self.completed_ops as f64 / (self.duration_us as f64 / 1e6)
    }

    /// Cluster-wide aggregate erase count (Fig. 6's y-axis).
    pub fn aggregate_erases(&self) -> u64 {
        self.per_osd.iter().map(|o| o.erase_count).sum()
    }

    /// Cluster-wide host page writes.
    pub fn aggregate_write_pages(&self) -> u64 {
        self.per_osd.iter().map(|o| o.write_pages).sum()
    }

    /// Relative standard deviation of per-OSD erase counts — the imbalance
    /// metric of §III.B.2.
    pub fn erase_rsd(&self) -> f64 {
        rsd(self.per_osd.iter().map(|o| o.erase_count as f64))
    }

    /// Fraction of all objects that were moved (Fig. 8's labels).
    pub fn moved_fraction(&self) -> f64 {
        if self.total_objects == 0 {
            return 0.0;
        }
        self.moved_objects as f64 / self.total_objects as f64
    }
}

/// Relative standard deviation (σ/mean) of a sequence; 0 for empty or
/// zero-mean input.
pub fn rsd(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
    var.sqrt() / mean
}

/// Builds per-OSD wear summaries from device snapshots.
pub fn summarize_osds<'a>(
    snaps: impl Iterator<Item = (u32, &'a WearStats, f64, u64)>,
) -> Vec<OsdWearSummary> {
    snaps
        .map(|(osd, wear, utilization, busy_us)| OsdWearSummary {
            osd,
            erase_count: wear.block_erases,
            write_pages: wear.host_page_writes,
            gc_page_moves: wear.gc_page_moves,
            utilization,
            busy_us,
            peak_queue_depth: 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_series_buckets_by_window() {
        let mut s = ResponseSeries::new(100);
        s.record(10, 5);
        s.record(20, 15);
        s.record(250, 100);
        let w = s.windows();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].completed_ops, 2);
        assert!((w[0].mean_response_us - 10.0).abs() < 1e-12);
        assert_eq!(w[1].completed_ops, 0);
        assert_eq!(w[1].mean_response_us, 0.0);
        assert_eq!(w[2].completed_ops, 1);
        assert_eq!(w[2].start_us, 200);
    }

    /// Regression: one late-completing op used to resize the window
    /// vector to its raw index — with a 1 µs window and a completion near
    /// u64::MAX, an allocation of ~3 × 10^20 buckets. The cap folds such
    /// ops into the last window instead.
    #[test]
    fn response_series_growth_is_capped() {
        let mut s = ResponseSeries::new(1);
        s.record(5, 2);
        s.record(u64::MAX, 7);
        let w = s.windows();
        assert_eq!(w.len(), ResponseSeries::MAX_WINDOWS);
        assert_eq!(w[5].completed_ops, 1);
        let last = w.last().unwrap();
        assert_eq!(last.completed_ops, 1);
        assert_eq!(last.mean_response_us, 7.0);
        // Both ops are accounted for.
        assert_eq!(w.iter().map(|x| x.completed_ops).sum::<u64>(), 2);
    }

    /// The chunked growth must not leak empty trailing windows into the
    /// reported series.
    #[test]
    fn response_series_reports_no_trailing_slack() {
        let mut s = ResponseSeries::new(100);
        s.record(50, 1);
        s.record(1_500, 1); // grows the vector by a whole chunk
        assert_eq!(s.windows().len(), 16);
        assert!(ResponseSeries::new(7).windows().is_empty());
    }

    #[test]
    fn throughput_is_ops_over_seconds() {
        let r = RunReport {
            trace: "t".into(),
            policy: "p".into(),
            osds: 4,
            completed_ops: 500,
            duration_us: 2_000_000,
            mean_response_us: 0.0,
            response_percentiles_us: (0, 0, 0),
            response_windows: vec![],
            per_osd: vec![],
            moved_objects: 0,
            remap_entries: 0,
            total_objects: 100,
            migrations_triggered: 0,
            failed_osds: vec![],
            degraded_ops: 0,
            lost_ops: 0,
            rebuilt_objects: 0,
        };
        assert!((r.throughput_ops_per_sec() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn aggregates_sum_over_osds() {
        let mk = |osd, e, w| OsdWearSummary {
            osd,
            erase_count: e,
            write_pages: w,
            gc_page_moves: 0,
            utilization: 0.5,
            busy_us: 0,
            peak_queue_depth: 0,
        };
        let r = RunReport {
            trace: "t".into(),
            policy: "p".into(),
            osds: 2,
            completed_ops: 0,
            duration_us: 0,
            mean_response_us: 0.0,
            response_percentiles_us: (0, 0, 0),
            response_windows: vec![],
            per_osd: vec![mk(0, 10, 100), mk(1, 30, 300)],
            moved_objects: 5,
            remap_entries: 3,
            total_objects: 50,
            migrations_triggered: 1,
            failed_osds: vec![],
            degraded_ops: 0,
            lost_ops: 0,
            rebuilt_objects: 0,
        };
        assert_eq!(r.aggregate_erases(), 40);
        assert_eq!(r.aggregate_write_pages(), 400);
        assert!((r.moved_fraction() - 0.1).abs() < 1e-12);
        assert!(r.erase_rsd() > 0.0);
        assert_eq!(r.throughput_ops_per_sec(), 0.0);
    }

    #[test]
    fn latency_histogram_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for us in 1..=1000u64 {
            h.record(us);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        // ~5 % bucket resolution around the true median of 500.
        assert!((450..=560).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((930..=1100).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn latency_histogram_handles_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert!(h.quantile(0.1) <= 2);
    }

    #[test]
    fn rsd_of_uniform_is_zero() {
        assert_eq!(rsd([5.0, 5.0, 5.0].into_iter()), 0.0);
        assert_eq!(rsd(std::iter::empty()), 0.0);
        assert_eq!(rsd([0.0, 0.0].into_iter()), 0.0);
        let spread = rsd([1.0, 9.0].into_iter());
        assert!((spread - 0.8).abs() < 1e-12);
    }
}

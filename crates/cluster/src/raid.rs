//! Object-level RAID-5 striping (§III.A).
//!
//! "File data are striped over its k objects using object-level RAID-5,"
//! which the paper prefers over replication because it is more
//! cost-effective for SSDs. A file's byte space is split into stripe rows
//! of `k - 1` data units; the remaining object of each row holds parity,
//! rotating left-symmetrically so parity load spreads over all k objects.
//!
//! A write to a stripe row therefore costs, besides the data-object write,
//! a read-modify-write of the row's parity unit (old data read + old
//! parity read + parity write) — the write amplification that couples
//! RAID-5 to SSD wear.

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

/// What a sub-operation does to an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoKind {
    DataRead,
    DataWrite,
    /// Read of old data needed for the parity read-modify-write.
    RmwRead,
    ParityRead,
    ParityWrite,
}

impl IoKind {
    pub fn is_write(self) -> bool {
        matches!(self, IoKind::DataWrite | IoKind::ParityWrite)
    }
}

/// One object-level I/O produced by striping a file request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectIo {
    /// Index of the target object within the file (0..k).
    pub object_index: u32,
    /// Byte offset inside the object.
    pub offset: u64,
    pub len: u64,
    pub kind: IoKind,
}

/// RAID-5 stripe layout of one file over `k` objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeLayout {
    /// Objects per file, k ≥ 2 (k−1 data + 1 rotating parity per row).
    pub k: u32,
    /// Stripe unit in bytes.
    pub unit: u64,
}

impl StripeLayout {
    /// Default stripe unit: 64 KB.
    pub const DEFAULT_UNIT: u64 = 64 * 1024;

    pub fn new(k: u32, unit: u64) -> Self {
        assert!(
            k >= 2,
            "RAID-5 needs at least 2 objects (k-1 data + parity)"
        );
        assert!(unit > 0, "stripe unit must be positive");
        StripeLayout { k, unit }
    }

    pub fn paper(k: u32) -> Self {
        StripeLayout::new(k, Self::DEFAULT_UNIT)
    }

    /// Data bytes per stripe row.
    pub fn row_data_bytes(&self) -> u64 {
        (self.k as u64 - 1) * self.unit
    }

    /// Number of stripe rows needed for a file of `file_size` bytes.
    pub fn rows(&self, file_size: u64) -> u64 {
        file_size.div_ceil(self.row_data_bytes()).max(1)
    }

    /// Size of each of the k objects for a file of `file_size` bytes
    /// (every object reserves one unit per row: data or parity).
    pub fn object_size(&self, file_size: u64) -> u64 {
        self.rows(file_size) * self.unit
    }

    /// The object holding parity for stripe `row` (left-symmetric
    /// rotation).
    pub fn parity_object(&self, row: u64) -> u32 {
        (self.k as u64 - 1 - row % self.k as u64) as u32
    }

    /// The object holding data unit `d` (0-based within its row) of stripe
    /// `row`: data units fill the non-parity objects in ascending order.
    pub fn data_object(&self, row: u64, d: u64) -> u32 {
        debug_assert!(d < self.k as u64 - 1);
        let parity = self.parity_object(row) as u64;
        if d < parity {
            d as u32
        } else {
            (d + 1) as u32
        }
    }

    /// Maps a file-level read `[offset, offset+len)` to object I/Os.
    pub fn map_read(&self, offset: u64, len: u64) -> Vec<ObjectIo> {
        self.map(offset, len, false)
    }

    /// Maps a file-level write to object I/Os including the parity
    /// read-modify-write of each touched row.
    pub fn map_write(&self, offset: u64, len: u64) -> Vec<ObjectIo> {
        self.map(offset, len, true)
    }

    fn map(&self, offset: u64, len: u64, write: bool) -> Vec<ObjectIo> {
        if len == 0 {
            return Vec::new();
        }
        let mut ios = Vec::new();
        let row_bytes = self.row_data_bytes();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let row = pos / row_bytes;
            let in_row = pos % row_bytes;
            let d = in_row / self.unit;
            let in_unit = in_row % self.unit;
            let chunk = (self.unit - in_unit).min(end - pos);
            let object_index = self.data_object(row, d);
            // A data unit of row r lives at object offset r * unit.
            let obj_offset = row * self.unit + in_unit;
            if write {
                let parity = self.parity_object(row);
                ios.push(ObjectIo {
                    object_index,
                    offset: obj_offset,
                    len: chunk,
                    kind: IoKind::RmwRead,
                });
                ios.push(ObjectIo {
                    object_index: parity,
                    offset: obj_offset,
                    len: chunk,
                    kind: IoKind::ParityRead,
                });
                ios.push(ObjectIo {
                    object_index,
                    offset: obj_offset,
                    len: chunk,
                    kind: IoKind::DataWrite,
                });
                ios.push(ObjectIo {
                    object_index: parity,
                    offset: obj_offset,
                    len: chunk,
                    kind: IoKind::ParityWrite,
                });
            } else {
                ios.push(ObjectIo {
                    object_index,
                    offset: obj_offset,
                    len: chunk,
                    kind: IoKind::DataRead,
                });
            }
            pos += chunk;
        }
        ios
    }
}

impl Snapshot for StripeLayout {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u32(self.k);
        w.put_u64(self.unit);
    }
    fn load(r: &mut SnapReader) -> Self {
        let k = r.take_u32();
        let unit = r.take_u64();
        if !r.failed() && (k < 2 || unit == 0) {
            r.corrupt(format!("stripe layout k = {k}, unit = {unit}"));
            return StripeLayout { k: 2, unit: 1 };
        }
        StripeLayout { k, unit }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> StripeLayout {
        StripeLayout::new(4, 64 * 1024)
    }

    #[test]
    fn row_capacity_is_k_minus_1_units() {
        assert_eq!(layout().row_data_bytes(), 3 * 64 * 1024);
    }

    #[test]
    fn parity_rotates_over_all_objects() {
        let l = layout();
        let ps: Vec<u32> = (0..4).map(|r| l.parity_object(r)).collect();
        let set: std::collections::HashSet<u32> = ps.iter().copied().collect();
        assert_eq!(set.len(), 4, "parity must visit every object: {ps:?}");
        assert_eq!(l.parity_object(0), 3);
        assert_eq!(l.parity_object(4), l.parity_object(0));
    }

    #[test]
    fn data_object_never_equals_parity_object() {
        let l = layout();
        for row in 0..8 {
            for d in 0..3 {
                assert_ne!(l.data_object(row, d), l.parity_object(row));
            }
        }
    }

    #[test]
    fn data_objects_of_a_row_are_distinct() {
        let l = layout();
        for row in 0..8 {
            let objs: std::collections::HashSet<u32> =
                (0..3).map(|d| l.data_object(row, d)).collect();
            assert_eq!(objs.len(), 3);
        }
    }

    #[test]
    fn small_read_touches_one_object() {
        let ios = layout().map_read(0, 4096);
        assert_eq!(ios.len(), 1);
        assert_eq!(
            ios[0],
            ObjectIo {
                object_index: 0,
                offset: 0,
                len: 4096,
                kind: IoKind::DataRead
            }
        );
    }

    #[test]
    fn small_write_is_data_plus_parity_rmw() {
        let ios = layout().map_write(0, 4096);
        let kinds: Vec<IoKind> = ios.iter().map(|io| io.kind).collect();
        assert_eq!(
            kinds,
            vec![
                IoKind::RmwRead,
                IoKind::ParityRead,
                IoKind::DataWrite,
                IoKind::ParityWrite
            ]
        );
        // Row 0: parity on object 3, data unit 0 on object 0.
        assert_eq!(ios[2].object_index, 0);
        assert_eq!(ios[3].object_index, 3);
        assert_eq!(ios[3].len, 4096);
    }

    #[test]
    fn read_spanning_units_splits_correctly() {
        let l = layout();
        // 100 KB starting at 60 KB: 4 KB in unit 0 + 64 KB unit 1 + 32 KB unit 2.
        let ios = l.map_read(60 * 1024, 100 * 1024);
        assert_eq!(ios.len(), 3);
        assert_eq!(ios[0].len, 4 * 1024);
        assert_eq!(ios[1].len, 64 * 1024);
        assert_eq!(ios[2].len, 32 * 1024);
        let total: u64 = ios.iter().map(|io| io.len).sum();
        assert_eq!(total, 100 * 1024);
        assert_eq!(ios[0].object_index, 0);
        assert_eq!(ios[1].object_index, 1);
        assert_eq!(ios[2].object_index, 2);
    }

    #[test]
    fn read_spanning_rows_changes_row_offset() {
        let l = layout();
        // Start in the last unit of row 0, cross into row 1.
        let ios = l.map_read(3 * 64 * 1024 - 4096, 8192);
        assert_eq!(ios.len(), 2);
        // Second chunk is row 1, data unit 0; parity of row 1 is object 2,
        // so data unit 0 is object 0, at object offset 1*unit.
        assert_eq!(ios[1].object_index, 0);
        assert_eq!(ios[1].offset, 64 * 1024);
    }

    #[test]
    fn write_bytes_conserved() {
        let l = layout();
        let ios = l.map_write(123_456, 300_000);
        let data: u64 = ios
            .iter()
            .filter(|io| io.kind == IoKind::DataWrite)
            .map(|io| io.len)
            .sum();
        assert_eq!(data, 300_000);
        let parity: u64 = ios
            .iter()
            .filter(|io| io.kind == IoKind::ParityWrite)
            .map(|io| io.len)
            .sum();
        assert_eq!(parity, 300_000, "parity RMW mirrors data bytes");
    }

    #[test]
    fn object_size_covers_all_rows() {
        let l = layout();
        // A 1-byte file still occupies one row.
        assert_eq!(l.object_size(1), 64 * 1024);
        // Exactly one row of data.
        assert_eq!(l.object_size(3 * 64 * 1024), 64 * 1024);
        // One byte more needs a second row.
        assert_eq!(l.object_size(3 * 64 * 1024 + 1), 2 * 64 * 1024);
    }

    #[test]
    fn every_mapped_io_fits_in_object_size() {
        let l = layout();
        let file_size = 1_000_000u64;
        let osize = l.object_size(file_size);
        for ios in [
            l.map_read(0, file_size),
            l.map_write(0, file_size),
            l.map_write(file_size - 1, 1),
        ] {
            for io in ios {
                assert!(
                    io.offset + io.len <= osize,
                    "io {io:?} beyond object size {osize}"
                );
            }
        }
    }

    #[test]
    fn zero_len_maps_to_nothing() {
        assert!(layout().map_read(10, 0).is_empty());
        assert!(layout().map_write(10, 0).is_empty());
    }

    #[test]
    fn k2_is_mirroring_like() {
        // k = 2: one data unit + one parity per row.
        let l = StripeLayout::new(2, 4096);
        let ios = l.map_write(0, 4096);
        let writes: Vec<&ObjectIo> = ios.iter().filter(|io| io.kind.is_write()).collect();
        assert_eq!(writes.len(), 2);
        assert_ne!(writes[0].object_index, writes[1].object_index);
    }
}

#![forbid(unsafe_code)]
//! # edm-cluster — object-storage cluster simulator
//!
//! The cluster substrate of the EDM reproduction (Ou et al., IPDPS 2014).
//! The paper's testbed is a pNFS cluster (clients + MDS + OSDs) whose OSDs
//! run flash simulators and handle requests serially (§IV); this crate
//! reproduces those dynamics as a deterministic discrete-event simulation:
//!
//! * [`placement`] — hash-based object placement (`inode mod n`, k
//!   continuous SSDs) and SSD groups with the intra-group migration rule
//!   (§III.A);
//! * [`raid`] — object-level RAID-5 striping with rotating parity and
//!   read-modify-write parity updates (§III.A);
//! * [`catalog`] / [`remap`] — the MDS file table and the remapping table
//!   that overlays moved objects (§III.C);
//! * [`osd`] / [`extent`] — storage nodes: one [`edm_ssd::Ssd`] each, an
//!   object directory, extent allocation, and the per-OSD statistics
//!   policies consume (`Wc` window, latency EWMA);
//! * [`cluster`] — capacity sizing (max utilization ≈ 70 %, §IV), file
//!   pre-creation, steady-state warm-up;
//! * [`sim`] — closed-loop replay with serial OSD queues, migration
//!   executed through the same queues (one mover stream per source OSD,
//!   in-flight objects blocked), wear-monitor ticks;
//! * [`migrate`] — the [`migrate::Migrator`] trait the EDM policies (in
//!   `edm-core`) implement, plus the no-migration baseline;
//! * [`metrics`] — throughput (Fig. 5), windowed response times (Fig. 7),
//!   per-OSD wear (Fig. 1, Fig. 6), moved-object counts (Fig. 8).

pub mod catalog;
pub mod cluster;
pub mod config;
pub mod equeue;
pub mod extent;
pub mod ids;
pub mod live;
pub mod metrics;
pub mod migrate;
pub mod osd;
pub mod pace;
pub mod placement;
pub mod raid;
pub mod remap;
pub mod shard;
pub mod sim;

pub use catalog::{Catalog, FileMeta};
pub use cluster::Cluster;
pub use config::ClusterConfig;
pub use ids::{ClientId, GroupId, ObjectId, OsdId};
pub use live::{LiveRun, StepPause};
pub use metrics::{OsdWearSummary, ResponseWindow, RunReport};
pub use migrate::{
    AccessEvent, AccessKind, ClusterView, Migrator, MoveAction, NoMigration, ObjectView, OsdView,
};
pub use pace::{SimTime, TimeSource, TimeStep};
pub use placement::Placement;
pub use raid::{IoKind, ObjectIo, StripeLayout};
pub use remap::RemappingTable;
pub use shard::{shard_decision, ShardDecision};
pub use sim::{
    resume_trace_obs, resume_trace_obs_keep, run_trace, run_trace_obs, run_trace_obs_keep,
    CheckpointConfig, ClientAffinity, FailureSpec, MigrationSchedule, SimOptions, SnapManifest,
};

//! Cluster simulation configuration (§IV–§V.A defaults).

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

use edm_ssd::{FtlConfig, LatencyModel};

use crate::placement::Placement;
use crate::raid::StripeLayout;

/// Everything needed to build and drive one cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of OSDs (`n`); the paper evaluates 16 and 20.
    pub osds: u32,
    /// Number of SSD groups (`m = 4` in §V.A).
    pub groups: u32,
    /// Objects per file (`k = 4` in §V.A).
    pub objects_per_file: u32,
    /// RAID-5 stripe unit in bytes.
    pub stripe_unit: u64,
    /// Number of load-generating clients; the paper uses half the OSD
    /// count (§V.A). `None` ⇒ `osds / 2`.
    pub clients: Option<u32>,
    /// Outstanding file operations per client — the paper replays with "a
    /// multi-thread trace replaying tool" (§IV), so each client keeps
    /// several requests in flight; this is what builds queues at hot OSDs.
    pub client_concurrency: u32,
    /// Target utilization of the *most utilized* SSD; capacities are sized
    /// so this holds ("maximum utilization among all SSDs is about 70
    /// percent", §IV).
    pub target_max_utilization: f64,
    /// Flash latencies.
    pub latency: LatencyModel,
    /// FTL tunables of every SSD (GC watermarks, victim policy, wear
    /// leveling).
    pub ftl: FtlConfig,
    /// Fixed per-subrequest overhead at an OSD (network + request
    /// processing), µs.
    pub osd_overhead_us: u64,
    /// Latency of a metadata (open/close) operation at the MDS, µs.
    pub mds_latency_us: u64,
    /// Interval of the wear-monitor tick, µs (the paper recomputes Eq. 4
    /// "every minute", §III.B.2).
    pub wear_tick_us: u64,
    /// Width of a response-time reporting window, µs (Fig. 7 averages over
    /// the past 3 minutes).
    pub response_window_us: u64,
    /// Skip the steady-state warm-up (§IV) — only for fast unit tests.
    pub skip_warm_up: bool,
    /// Free space in each destination must not drop below this fraction of
    /// its capacity during migration ("we guarantee that the free space in
    /// each destination device does not exceed a predefined threshold",
    /// §III.B.5).
    pub dest_free_reserve: f64,
    /// Transfer chunk of the data mover, bytes. Moves stream through the
    /// OSD queues chunk by chunk so a large object does not hold a
    /// destination's head-of-line for its entire transfer.
    pub move_chunk_bytes: u64,
}

impl ClusterConfig {
    /// The paper's setup for `osds` storage nodes.
    pub fn paper(osds: u32) -> Self {
        ClusterConfig {
            osds,
            groups: 4,
            objects_per_file: 4,
            stripe_unit: StripeLayout::DEFAULT_UNIT,
            clients: None,
            client_concurrency: 64,
            target_max_utilization: 0.70,
            latency: LatencyModel::PAPER,
            ftl: FtlConfig::default(),
            osd_overhead_us: 30,
            mds_latency_us: 200,
            wear_tick_us: 60 * 1_000_000,
            response_window_us: 180 * 1_000_000,
            skip_warm_up: false,
            dest_free_reserve: 0.05,
            move_chunk_bytes: 256 * 1024,
        }
    }

    /// A small fast configuration for unit tests: 8 OSDs, tiny overheads,
    /// warm-up skipped.
    pub fn test_small() -> Self {
        ClusterConfig {
            skip_warm_up: true,
            ..ClusterConfig::paper(8)
        }
    }

    pub fn placement(&self) -> Placement {
        Placement::new(self.osds, self.groups, self.objects_per_file)
    }

    pub fn stripe_layout(&self) -> StripeLayout {
        StripeLayout::new(self.objects_per_file, self.stripe_unit)
    }

    pub fn client_count(&self) -> u32 {
        self.clients.unwrap_or((self.osds / 2).max(1))
    }

    pub fn validate(&self) -> Result<(), String> {
        Placement {
            osds: self.osds,
            groups: self.groups,
            objects_per_file: self.objects_per_file,
        }
        .validate()?;
        if !(0.0 < self.target_max_utilization && self.target_max_utilization < 1.0) {
            return Err("target_max_utilization must be in (0, 1)".into());
        }
        if !(0.0..1.0).contains(&self.dest_free_reserve) {
            return Err("dest_free_reserve must be in [0, 1)".into());
        }
        if self.wear_tick_us == 0 || self.response_window_us == 0 {
            return Err("tick and window intervals must be positive".into());
        }
        if self.client_count() == 0 {
            return Err("need at least one client".into());
        }
        if self.client_concurrency == 0 {
            return Err("client_concurrency must be positive".into());
        }
        if self.move_chunk_bytes == 0 {
            return Err("move_chunk_bytes must be positive".into());
        }
        Ok(())
    }
}

impl Snapshot for ClusterConfig {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u32(self.osds);
        w.put_u32(self.groups);
        w.put_u32(self.objects_per_file);
        w.put_u64(self.stripe_unit);
        self.clients.save(w);
        w.put_u32(self.client_concurrency);
        w.put_f64(self.target_max_utilization);
        self.latency.save(w);
        self.ftl.save(w);
        w.put_u64(self.osd_overhead_us);
        w.put_u64(self.mds_latency_us);
        w.put_u64(self.wear_tick_us);
        w.put_u64(self.response_window_us);
        w.put_bool(self.skip_warm_up);
        w.put_f64(self.dest_free_reserve);
        w.put_u64(self.move_chunk_bytes);
    }
    fn load(r: &mut SnapReader) -> Self {
        let c = ClusterConfig {
            osds: r.take_u32(),
            groups: r.take_u32(),
            objects_per_file: r.take_u32(),
            stripe_unit: r.take_u64(),
            clients: Option::load(r),
            client_concurrency: r.take_u32(),
            target_max_utilization: r.take_f64(),
            latency: LatencyModel::load(r),
            ftl: FtlConfig::load(r),
            osd_overhead_us: r.take_u64(),
            mds_latency_us: r.take_u64(),
            wear_tick_us: r.take_u64(),
            response_window_us: r.take_u64(),
            skip_warm_up: r.take_bool(),
            dest_free_reserve: r.take_f64(),
            move_chunk_bytes: r.take_u64(),
        };
        if !r.failed() {
            if let Err(e) = c.validate() {
                r.corrupt(format!("cluster config: {e}"));
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_v() {
        let c = ClusterConfig::paper(20);
        assert_eq!(c.groups, 4);
        assert_eq!(c.objects_per_file, 4);
        assert_eq!(c.client_count(), 10);
        assert!((c.target_max_utilization - 0.70).abs() < 1e-12);
        assert_eq!(c.wear_tick_us, 60_000_000);
        assert_eq!(c.response_window_us, 180_000_000);
        c.validate().unwrap();
    }

    #[test]
    fn explicit_client_count_wins() {
        let mut c = ClusterConfig::paper(16);
        c.clients = Some(3);
        assert_eq!(c.client_count(), 3);
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut c = ClusterConfig::paper(16);
        c.target_max_utilization = 1.5;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper(16);
        c.wear_tick_us = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper(16);
        c.groups = 64; // more groups than OSDs? no — more than osds is invalid
        c.osds = 8;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tiny_cluster_client_floor() {
        let mut c = ClusterConfig::paper(4);
        c.clients = None;
        assert_eq!(c.client_count(), 2);
        c.osds = 1;
        c.groups = 1;
        c.objects_per_file = 1;
        assert_eq!(c.client_count(), 1);
        c.validate().unwrap();
    }
}

//! The discrete-event replay engine.
//!
//! Closed-loop clients replay their share of the trace against serial
//! OSDs (§IV–§V.A): each client keeps exactly one file operation in
//! flight; a file operation fans out into object-level sub-requests via
//! RAID-5 striping; every OSD services its FIFO queue one request at a
//! time, charging flash latencies (and any garbage-collection stall) to
//! the request being serviced. Migration runs through the same queues —
//! one mover stream per source OSD, objects blocked while in flight
//! ("all the requests related to the objects being moved are blocked",
//! §V.D) — so migration traffic competes with foreground I/O exactly as
//! in the paper.

use std::collections::VecDeque;
use std::path::PathBuf;

use edm_obs::{AsDynRecorder, Event as ObsEvent, NoopRecorder, Recorder};
use edm_snap::{FlatMap, SnapError, SnapReader, SnapWriter, Snapshot, SnapshotFile, TokenMap};
use edm_workload::{FileOp, Trace};

use crate::cluster::Cluster;
use crate::equeue::{CalendarQueue, EventQueue};
use crate::ids::{ClientId, ObjectId, OsdId};
use crate::metrics::{summarize_osds, LatencyHistogram, ResponseSeries, RunReport};
use crate::migrate::{validate_plan, AccessEvent, AccessKind, Migrator, MoveAction};
use crate::osd::{pages_spanned, OsdError};
use crate::pace::{SimTime, TimeSource, TimeStep};

/// When the engine consults the migration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationSchedule {
    /// Never ask (pure baseline, regardless of policy).
    Never,
    /// Once, when half of the trace records have completed — the paper
    /// enforces the shuffle "in the middle time point of trace replay"
    /// (§V.A).
    #[default]
    Midpoint,
    /// On every wear-monitor tick (continuous mode; an extension beyond
    /// the paper's forced-midpoint experiments).
    EveryTick,
}

/// An injected OSD failure (reliability experiments, §III.D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureSpec {
    /// Virtual time at which the OSD dies.
    pub at_us: u64,
    pub osd: OsdId,
    /// Rebuild the lost objects onto surviving group members (RAID-5
    /// reconstruction from the k−1 sibling objects).
    pub rebuild: bool,
}

/// Periodic checkpointing of the full simulation state (see
/// [`resume_trace_obs`]).
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Virtual-time interval between checkpoints, µs. Checkpoints are cut
    /// at wear-monitor ticks (the only points with no mid-decision state),
    /// so the effective spacing is rounded up to whole ticks.
    pub every_us: u64,
    /// Directory receiving `ckpt_<now_us>.snap` files (atomic writes).
    pub dir: PathBuf,
    /// Opaque caller bytes stored in each snapshot's manifest — the
    /// harness records its scenario text and trace fingerprint here so a
    /// resumed process can verify it rebuilt the same world.
    pub meta: Vec<u8>,
}

/// How trace users are assigned to replay clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientAffinity {
    /// Users round-robin onto clients in order of first appearance (the
    /// paper's even assignment, §V.A).
    #[default]
    User,
    /// Users are grouped by placement component first (see
    /// [`crate::shard`]), so each client's records stay inside one
    /// component — the layout that lets group-sharded execution replay
    /// clients in parallel. Changes the assignment (and therefore the
    /// replay) relative to [`ClientAffinity::User`], identically for the
    /// sequential and sharded paths.
    Component,
}

/// Everything the engine needs besides the cluster itself.
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    pub schedule: MigrationSchedule,
    /// OSD failures to inject during the replay.
    pub failures: Vec<FailureSpec>,
    /// Periodic full-state checkpoints; `None` disables them.
    pub checkpoint: Option<CheckpointConfig>,
    /// Worker threads for group-sharded parallel execution; 0 (default)
    /// runs the classic sequential loop. Sharding additionally requires
    /// [`ClientAffinity::Component`], a policy whose
    /// [`Migrator::parallel_safe`] holds, no checkpointing, a
    /// non-midpoint schedule, and ≥ 2 placement components — otherwise
    /// the run silently falls back to the sequential path. Reports are
    /// bit-identical either way.
    pub shards: u32,
    pub affinity: ClientAffinity,
}

/// The snapshot header: everything a tool needs to describe a checkpoint
/// without materializing the simulator. Always the first section of a
/// checkpoint file, decodable on its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapManifest {
    /// Virtual time at which the checkpoint was cut.
    pub now_us: u64,
    pub completed_ops: u64,
    pub total_records: u64,
    /// `Migrator::name()` of the policy that was driving the run.
    pub policy: String,
    /// Block erases per OSD at checkpoint time (the Fig. 6 trajectory).
    pub per_osd_erases: Vec<u64>,
    /// Opaque caller bytes ([`CheckpointConfig::meta`]).
    pub extra: Vec<u8>,
}

impl SnapManifest {
    /// Section name of the manifest inside a checkpoint file.
    pub const SECTION: &'static str = "manifest";

    /// Decodes just the manifest of a checkpoint (cheap: only this
    /// section's CRC is verified).
    pub fn from_snapshot(file: &SnapshotFile) -> Result<SnapManifest, SnapError> {
        file.decode(Self::SECTION)
    }
}

impl Snapshot for SnapManifest {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.now_us);
        w.put_u64(self.completed_ops);
        w.put_u64(self.total_records);
        self.policy.save(w);
        self.per_osd_erases.save(w);
        self.extra.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        SnapManifest {
            now_us: r.take_u64(),
            completed_ops: r.take_u64(),
            total_records: r.take_u64(),
            policy: String::load(r),
            per_osd_erases: Vec::load(r),
            extra: Vec::load(r),
        }
    }
}

impl Snapshot for MigrationSchedule {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            MigrationSchedule::Never => 0,
            MigrationSchedule::Midpoint => 1,
            MigrationSchedule::EveryTick => 2,
        });
    }
    fn load(r: &mut SnapReader) -> Self {
        match r.take_u8() {
            0 => MigrationSchedule::Never,
            1 => MigrationSchedule::Midpoint,
            2 => MigrationSchedule::EveryTick,
            tag => {
                r.corrupt(format!("migration schedule tag {tag}"));
                MigrationSchedule::Never
            }
        }
    }
}

impl Snapshot for FailureSpec {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.at_us);
        self.osd.save(w);
        w.put_bool(self.rebuild);
    }
    fn load(r: &mut SnapReader) -> Self {
        FailureSpec {
            at_us: r.take_u64(),
            osd: OsdId::load(r),
            rebuild: r.take_bool(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// The OSD finished servicing its current sub-request.
    OsdDone(u32),
    /// The MDS finished an open/close.
    MdsDone(u64),
    /// Wear-monitor tick (§III.B.2).
    Tick,
    /// Injected OSD failure.
    Fail(u32),
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Payload {
    /// Part of file operation `token`.
    FileIo {
        token: u64,
        object: ObjectId,
        offset: u64,
        len: u64,
        write: bool,
        /// True when this sub-op was produced by degraded-mode expansion
        /// (RAID-5 reconstruction reads); degraded ops are never expanded
        /// again — hitting a second failed device means data loss.
        degraded: bool,
    },
    /// Migration: source-side read of one transfer chunk.
    MoveRead {
        object: ObjectId,
        offset: u64,
        len: u64,
    },
    /// Migration: destination-side write of one transfer chunk.
    MoveWrite {
        object: ObjectId,
        offset: u64,
        len: u64,
    },
    /// Rebuild: full read of one surviving sibling of a lost object.
    RebuildRead { lost: ObjectId, sibling: ObjectId },
    /// Rebuild: destination-side write of one reconstruction chunk.
    RebuildWrite {
        lost: ObjectId,
        offset: u64,
        len: u64,
    },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct SubReq {
    enqueued_us: u64,
    payload: Payload,
}

struct Inflight {
    client: ClientId,
    issued_us: u64,
    remaining: u32,
}

/// Progress of one lost-object reconstruction.
struct RebuildState {
    dest: OsdId,
    /// Sibling reads still outstanding before writing can start.
    pending_reads: u32,
    size: u64,
}

impl Snapshot for Event {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            Event::OsdDone(o) => {
                w.put_u8(0);
                w.put_u32(o);
            }
            Event::MdsDone(token) => {
                w.put_u8(1);
                w.put_u64(token);
            }
            Event::Tick => w.put_u8(2),
            Event::Fail(o) => {
                w.put_u8(3);
                w.put_u32(o);
            }
        }
    }
    fn load(r: &mut SnapReader) -> Self {
        match r.take_u8() {
            0 => Event::OsdDone(r.take_u32()),
            1 => Event::MdsDone(r.take_u64()),
            2 => Event::Tick,
            3 => Event::Fail(r.take_u32()),
            tag => {
                r.corrupt(format!("event tag {tag}"));
                Event::Tick
            }
        }
    }
}

impl Snapshot for Payload {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            Payload::FileIo {
                token,
                object,
                offset,
                len,
                write,
                degraded,
            } => {
                w.put_u8(0);
                w.put_u64(token);
                object.save(w);
                w.put_u64(offset);
                w.put_u64(len);
                w.put_bool(write);
                w.put_bool(degraded);
            }
            Payload::MoveRead {
                object,
                offset,
                len,
            } => {
                w.put_u8(1);
                object.save(w);
                w.put_u64(offset);
                w.put_u64(len);
            }
            Payload::MoveWrite {
                object,
                offset,
                len,
            } => {
                w.put_u8(2);
                object.save(w);
                w.put_u64(offset);
                w.put_u64(len);
            }
            Payload::RebuildRead { lost, sibling } => {
                w.put_u8(3);
                lost.save(w);
                sibling.save(w);
            }
            Payload::RebuildWrite { lost, offset, len } => {
                w.put_u8(4);
                lost.save(w);
                w.put_u64(offset);
                w.put_u64(len);
            }
        }
    }
    fn load(r: &mut SnapReader) -> Self {
        match r.take_u8() {
            0 => Payload::FileIo {
                token: r.take_u64(),
                object: ObjectId::load(r),
                offset: r.take_u64(),
                len: r.take_u64(),
                write: r.take_bool(),
                degraded: r.take_bool(),
            },
            1 => Payload::MoveRead {
                object: ObjectId::load(r),
                offset: r.take_u64(),
                len: r.take_u64(),
            },
            2 => Payload::MoveWrite {
                object: ObjectId::load(r),
                offset: r.take_u64(),
                len: r.take_u64(),
            },
            3 => Payload::RebuildRead {
                lost: ObjectId::load(r),
                sibling: ObjectId::load(r),
            },
            4 => Payload::RebuildWrite {
                lost: ObjectId::load(r),
                offset: r.take_u64(),
                len: r.take_u64(),
            },
            tag => {
                r.corrupt(format!("payload tag {tag}"));
                Payload::MoveRead {
                    object: ObjectId(0),
                    offset: 0,
                    len: 0,
                }
            }
        }
    }
}

impl Snapshot for SubReq {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.enqueued_us);
        self.payload.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        SubReq {
            enqueued_us: r.take_u64(),
            payload: Payload::load(r),
        }
    }
}

impl Snapshot for Inflight {
    fn save(&self, w: &mut SnapWriter) {
        self.client.save(w);
        w.put_u64(self.issued_us);
        w.put_u32(self.remaining);
    }
    fn load(r: &mut SnapReader) -> Self {
        Inflight {
            client: ClientId::load(r),
            issued_us: r.take_u64(),
            remaining: r.take_u32(),
        }
    }
}

impl Snapshot for RebuildState {
    fn save(&self, w: &mut SnapWriter) {
        self.dest.save(w);
        w.put_u32(self.pending_reads);
        w.put_u64(self.size);
    }
    fn load(r: &mut SnapReader) -> Self {
        RebuildState {
            dest: OsdId::load(r),
            pending_reads: r.take_u32(),
            size: r.take_u64(),
        }
    }
}

/// Component ownership tables for shard-aware journaling: which
/// placement component each OSD and each client slot belongs to. Built
/// only for component-affine runs with event journaling on; `None`
/// otherwise. Derived state — a pure function of (cluster, trace,
/// options) — so it is never snapshotted and resume rebuilds it.
struct CompTags {
    of_osd: Vec<u32>,
    of_client: Vec<u32>,
}

impl CompTags {
    fn build(cluster: &Cluster, trace: &Trace, scripts: &[Vec<usize>]) -> CompTags {
        let placement = *cluster.catalog.placement();
        let (comp_of_group, _) = crate::shard::component_map(cluster, trace);
        let comp_of_file = |file: edm_workload::FileId| {
            comp_of_group[placement.group_of(placement.home_osd(file, 0)).0 as usize] as u32
        };
        let of_osd = (0..cluster.config.osds)
            .map(|o| comp_of_group[placement.group_of(OsdId(o)).0 as usize] as u32)
            .collect();
        // A component-affine script stays inside one component, so its
        // first record names it. Empty scripts never journal anything.
        let of_client = scripts
            .iter()
            .map(|s| match s.first() {
                Some(&i) => comp_of_file(trace.records[i].file),
                None => 0,
            })
            .collect();
        CompTags { of_osd, of_client }
    }
}

/// Where [`Engine::run_until_pause`] handed control back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pause {
    /// A wear-monitor tick was popped (time already advanced to it); the
    /// caller runs the tick body before resuming.
    Tick,
    /// The event queue is empty.
    Done,
}

/// The replay engine, generic over its policy and observability sinks so
/// the group-sharded runner can instantiate it with owned, `Send` types
/// (an access buffer + a memory recorder) while the public entry points
/// keep using trait objects. Behaviour is identical for both.
pub(crate) struct Engine<'a, P: Migrator + ?Sized, R: Recorder + AsDynRecorder + ?Sized> {
    pub(crate) cluster: Cluster,
    trace: &'a Trace,
    pub(crate) policy: &'a mut P,
    pub(crate) options: SimOptions,
    /// Observability sink. The engine owns the journal clock (`set_now`
    /// on every dispatched event) and the device scope around device ops;
    /// recording is read-only so behaviour is identical at every level.
    pub(crate) obs: &'a mut R,

    queue: CalendarQueue<Event>,
    seq: u64,
    pub(crate) now: u64,

    pub(crate) scripts: Vec<Vec<usize>>,
    cursors: Vec<usize>,
    /// File ops currently in flight per client (bounded by the configured
    /// concurrency — the multi-threaded replayer of §IV).
    outstanding: Vec<u32>,

    inflight: TokenMap<Inflight>,
    next_token: u64,

    pub(crate) queues: Vec<VecDeque<SubReq>>,
    pub(crate) current: Vec<Option<SubReq>>,
    /// Accumulated service time per OSD (overhead + device, incl. GC).
    pub(crate) busy_us: Vec<u64>,
    /// Deepest queue ever observed per OSD.
    pub(crate) peak_queue_depth: Vec<u64>,

    /// Whether in-flight moves block requests (policy property).
    blocking_moves: bool,
    /// Objects whose move is in flight → parked sub-requests (always
    /// empty lists when moves are non-blocking).
    pub(crate) moving: FlatMap<ObjectId, Vec<SubReq>>,
    /// Source OSD and destination of each in-flight move.
    pub(crate) move_routes: FlatMap<ObjectId, MoveAction>,
    /// Pending moves per source OSD (one stream per source).
    pub(crate) move_queues: Vec<VecDeque<MoveAction>>,

    /// OSDs that have failed so far.
    pub(crate) failed: Vec<bool>,
    /// In-flight rebuilds of lost objects.
    rebuilds: FlatMap<ObjectId, RebuildState>,
    pub(crate) degraded_ops: u64,
    pub(crate) lost_ops: u64,
    pub(crate) rebuilt_objects: u64,

    pub(crate) responses: ResponseSeries,
    pub(crate) response_hist: LatencyHistogram,
    pub(crate) response_sum: f64,
    pub(crate) completed_ops: u64,
    total_records: u64,
    migration_fired: bool,
    pub(crate) migrations_triggered: u64,
    pub(crate) moved_objects: u64,
    pub(crate) failed_moves: u64,
    /// Time of the last request or move completion — the replay duration.
    /// Deliberately not advanced by Tick events: a trailing wear-monitor
    /// tick must not inflate the measured duration.
    pub(crate) last_completion_us: u64,
    /// Virtual time of the last checkpoint cut (0 = none yet).
    last_ckpt_us: u64,
    /// Page size of the (uniform) devices, latched at construction so
    /// request fan-out never depends on any particular OSD slot.
    page_size: u64,
    /// Where the last `run_until_pause` stopped — written by the engine
    /// itself so the sharded runner needs no cross-thread channel to
    /// collect it.
    pub(crate) paused: Pause,
    /// Component tags for shard-aware journaling (see [`CompTags`]).
    comp_tags: Option<CompTags>,
}

impl<'a, P: Migrator + ?Sized, R: Recorder + AsDynRecorder + ?Sized> Engine<'a, P, R> {
    fn push(&mut self, at: u64, ev: Event) {
        self.seq += 1;
        self.queue.push(at, self.seq, ev);
    }

    /// Tags subsequent journal entries with the component that owns
    /// `osd`. No-op outside component-affine journaling runs.
    fn scope_component_osd(&mut self, osd: OsdId) {
        if let Some(tags) = &self.comp_tags {
            self.obs.set_component(Some(tags.of_osd[osd.0 as usize]));
        }
    }

    /// Tags subsequent journal entries with `client`'s component.
    fn scope_component_client(&mut self, client: ClientId) {
        if let Some(tags) = &self.comp_tags {
            self.obs
                .set_component(Some(tags.of_client[client.0 as usize]));
        }
    }

    /// Clears the component tag: work the sharded coordinator would run
    /// itself (the tick body, migration planning) journals untagged in
    /// both engines, which is what makes the serialized journals
    /// byte-identical.
    fn scope_component_none(&mut self) {
        if self.comp_tags.is_some() {
            self.obs.set_component(None);
        }
    }

    /// Issues records for `client` until its concurrency window is full
    /// or its script is exhausted.
    fn fill_client(&mut self, client: ClientId) {
        let limit = self.cluster.config.client_concurrency;
        while self.outstanding[client.0 as usize] < limit && self.issue_next(client) {}
    }

    /// Issues the client's next record; returns false when the script is
    /// exhausted.
    fn issue_next(&mut self, client: ClientId) -> bool {
        let c = client.0 as usize;
        let Some(&idx) = self.scripts[c].get(self.cursors[c]) else {
            return false; // this client is done
        };
        self.cursors[c] += 1;
        self.outstanding[c] += 1;
        let record = self.trace.records[idx];
        let token = self.next_token;
        self.next_token += 1;
        match record.op {
            FileOp::Open | FileOp::Close => {
                self.inflight.insert(
                    token,
                    Inflight {
                        client,
                        issued_us: self.now,
                        remaining: 1,
                    },
                );
                let at = self.now + self.cluster.config.mds_latency_us;
                self.push(at, Event::MdsDone(token));
            }
            FileOp::Read { offset, len } | FileOp::Write { offset, len } => {
                let write = record.op.is_write();
                let layout = *self.cluster.catalog.layout();
                let ios = if write {
                    layout.map_write(offset, len)
                } else {
                    layout.map_read(offset, len)
                };
                debug_assert!(!ios.is_empty());
                assert!(
                    self.cluster.catalog.file(record.file).is_some(),
                    "trace references unknown file {:?}",
                    record.file
                );
                // Object ids are a pure function of (file, stripe index) —
                // see `Catalog::create_file` — so there is no need to clone
                // the file's object list on every record.
                let placement = *self.cluster.catalog.placement();
                self.inflight.insert(
                    token,
                    Inflight {
                        client,
                        issued_us: self.now,
                        remaining: ios.len() as u32,
                    },
                );
                let page_size = self.page_size;
                for io in ios {
                    let object = placement.object_id(record.file, io.object_index);
                    self.policy.on_access(AccessEvent {
                        now_us: self.now,
                        object,
                        kind: if io.kind.is_write() {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                        pages: pages_spanned(io.offset, io.len, page_size),
                    });
                    let sub = SubReq {
                        enqueued_us: self.now,
                        payload: Payload::FileIo {
                            token,
                            object,
                            offset: io.offset,
                            len: io.len,
                            write: io.kind.is_write(),
                            degraded: false,
                        },
                    };
                    self.route(sub);
                }
            }
        }
        true
    }

    /// Routes a sub-request to the current location of its object, parking
    /// it if the object is being moved, and falling back to degraded
    /// RAID-5 service when the object's device has failed.
    fn route(&mut self, sub: SubReq) {
        let object = match sub.payload {
            Payload::FileIo { object, .. } => object,
            // Move I/Os carry explicit endpoints and are enqueued directly.
            // edm-audit: allow(panic.unreachable, "routing invariant: mover payloads are enqueued directly, never routed")
            _ => unreachable!("move I/O must not be routed"),
        };
        if self.blocking_moves {
            if let Some(parked) = self.moving.get_mut(&object) {
                parked.push(sub);
                return;
            }
        }
        let osd = self.cluster.catalog.locate(object);
        if self.failed[osd.0 as usize] {
            self.degrade(sub);
            return;
        }
        self.enqueue(osd, sub);
    }

    /// Serves a sub-request whose target object lives on a failed device:
    /// RAID-5 reconstructs the lost unit from the same extent of the k−1
    /// sibling objects (our layout puts a stripe row at the same offset in
    /// every object of the file). A write additionally updates one
    /// surviving sibling (the row's redundancy). A degraded op that hits a
    /// *second* failed device is data loss: it completes immediately and
    /// is counted in `lost_ops`.
    fn degrade(&mut self, sub: SubReq) {
        let Payload::FileIo {
            token,
            object,
            offset,
            len,
            write,
            degraded,
        } = sub.payload
        else {
            // edm-audit: allow(panic.unreachable, "degraded handling is only reached from the FileIo dispatch arm")
            unreachable!("only file I/O can be degraded");
        };
        if degraded {
            // Second failure on the same stripe: RAID-5 cannot recover.
            self.lost_ops += 1;
            self.finish_subop(token);
            return;
        }
        let (file, _) = self.cluster.catalog.placement().object_owner(object);
        let siblings: Vec<ObjectId> = self
            .cluster
            .catalog
            .file(file)
            // edm-audit: allow(panic.expect, "catalog invariant: every placed object belongs to a cataloged file")
            .expect("degraded object has a file")
            .objects
            .iter()
            .copied()
            .filter(|&o| o != object)
            .collect();
        let alive: Vec<ObjectId> = siblings
            .iter()
            .copied()
            .filter(|&o| {
                let loc = self.cluster.catalog.locate(o);
                !self.failed[loc.0 as usize]
            })
            .collect();
        if alive.is_empty() {
            self.lost_ops += 1;
            self.finish_subop(token);
            return;
        }
        self.degraded_ops += 1;
        // Reconstruction: read the extent on every surviving sibling; a
        // write turns the last of them into the redundancy update.
        self.inflight
            .get_mut(token)
            // edm-audit: allow(panic.expect, "engine invariant: sub-ops outlive their parent op until the last completion")
            .expect("degraded sub-op has an op")
            .remaining += alive.len() as u32 - 1;
        let last = alive.len() - 1;
        for (i, sibling) in alive.into_iter().enumerate() {
            let sub = SubReq {
                enqueued_us: sub.enqueued_us,
                payload: Payload::FileIo {
                    token,
                    object: sibling,
                    offset,
                    len,
                    write: write && i == last,
                    degraded: true,
                },
            };
            self.route(sub);
        }
    }

    fn enqueue(&mut self, osd: OsdId, sub: SubReq) {
        let o = osd.0 as usize;
        self.queues[o].push_back(sub);
        self.peak_queue_depth[o] = self.peak_queue_depth[o].max(self.queues[o].len() as u64);
        self.obs.counter("sim.subops_enqueued", 1);
        if self.obs.events_on() {
            self.obs.event(ObsEvent::OpEnqueue {
                osd: osd.0,
                depth: self.queues[o].len() as u64,
                mover: false,
            });
        }
        if self.current[o].is_none() {
            self.start_service(osd);
        }
    }

    /// Enqueues a mover chunk at the head of the queue: the data mover is
    /// a dedicated stream, and serving it first keeps the window during
    /// which an object is blocked as short as possible (one foreground
    /// request may still be mid-service ahead of it).
    fn enqueue_mover(&mut self, osd: OsdId, sub: SubReq) {
        self.queues[osd.0 as usize].push_front(sub);
        self.obs.counter("sim.mover_chunks_enqueued", 1);
        if self.obs.events_on() {
            self.obs.event(ObsEvent::OpEnqueue {
                osd: osd.0,
                depth: self.queues[osd.0 as usize].len() as u64,
                mover: true,
            });
        }
        if self.current[osd.0 as usize].is_none() {
            self.start_service(osd);
        }
    }

    /// Pops the head of the OSD queue, performs the device operation, and
    /// schedules its completion.
    fn start_service(&mut self, osd: OsdId) {
        let o = osd.0 as usize;
        debug_assert!(self.current[o].is_none(), "OSD {osd} double-booked");
        let Some(sub) = self.queues[o].pop_front() else {
            return;
        };
        if self.obs.events_on() {
            self.obs.event(ObsEvent::OpDequeue {
                osd: osd.0,
                depth: self.queues[o].len() as u64,
            });
        }
        // Scope FTL events from the device op to this OSD.
        self.obs.set_device(Some(osd.0));
        let obs = self.obs.as_dyn_mut();
        let dev = &mut self.cluster.osds[o];
        let device = match sub.payload {
            Payload::FileIo {
                object,
                offset,
                len,
                write,
                ..
            } => {
                if write {
                    dev.write_object_obs(object, offset, len, obs)
                } else {
                    dev.read_object(object, offset, len)
                }
            }
            Payload::MoveRead {
                object,
                offset,
                len,
            } => dev.read_object(object, offset, len),
            Payload::MoveWrite {
                object,
                offset,
                len,
            } => dev.write_object_obs(object, offset, len, obs),
            Payload::RebuildRead { sibling, .. } => dev.read_whole_object(sibling),
            Payload::RebuildWrite { lost, offset, len } => {
                dev.write_object_obs(lost, offset, len, obs)
            }
        }
        // edm-audit: allow(panic.panic, "a failed device op means corrupted simulator state; aborting beats mis-simulating")
        .unwrap_or_else(|e| panic!("device op failed on {osd}: {e}"));
        self.obs.set_device(None);
        let service = self.cluster.config.osd_overhead_us + device.as_micros();
        self.busy_us[o] += service;
        self.current[o] = Some(sub);
        self.push(self.now + service, Event::OsdDone(osd.0));
    }

    fn on_osd_done(&mut self, osd: OsdId) {
        let o = osd.0 as usize;
        // edm-audit: allow(panic.expect, "engine invariant: a completion event implies a request in service")
        let sub = self.current[o].take().expect("completion without service");
        let sojourn = self.now - sub.enqueued_us;
        self.cluster.osds[o].record_service(sojourn);
        self.obs.latency("subop_sojourn_us", sojourn);
        match sub.payload {
            Payload::FileIo { token, .. } => self.finish_subop(token),
            Payload::MoveRead {
                object,
                offset,
                len,
            } => self.on_move_read_done(object, offset, len),
            Payload::MoveWrite {
                object,
                offset,
                len,
            } => self.on_move_write_done(object, offset, len),
            Payload::RebuildRead { lost, .. } => self.on_rebuild_read_done(lost),
            Payload::RebuildWrite { lost, offset, len } => {
                self.on_rebuild_write_done(lost, offset, len)
            }
        }
        // The completion handler may already have restarted this OSD (a
        // released client can enqueue straight back onto it); only start
        // the next service if the device is still idle. A failed device
        // never resumes service.
        if !self.failed[o] && self.current[o].is_none() && !self.queues[o].is_empty() {
            self.start_service(osd);
        }
    }

    /// One sibling read of a rebuild finished; once all have, start the
    /// chunked reconstruction writes at the destination.
    fn on_rebuild_read_done(&mut self, lost: ObjectId) {
        // A later failure may have aborted this rebuild while the sibling
        // read was in flight; the read then completes as a harmless no-op.
        let Some(state) = self.rebuilds.get_mut(&lost) else {
            return;
        };
        state.pending_reads -= 1;
        if state.pending_reads > 0 {
            return;
        }
        let (dest, size) = (state.dest, state.size);
        let chunk = size.min(self.cluster.config.move_chunk_bytes).max(1);
        let sub = SubReq {
            enqueued_us: self.now,
            payload: Payload::RebuildWrite {
                lost,
                offset: 0,
                len: chunk,
            },
        };
        self.enqueue(dest, sub);
    }

    /// One reconstruction chunk landed; continue or finalize the rebuild.
    fn on_rebuild_write_done(&mut self, lost: ObjectId, offset: u64, len: u64) {
        // Aborted by a later failure while this chunk was in service.
        let Some(state) = self.rebuilds.get(&lost) else {
            return;
        };
        let (dest, size) = (state.dest, state.size);
        let next = offset + len;
        if next < size {
            let chunk = (size - next).min(self.cluster.config.move_chunk_bytes);
            let sub = SubReq {
                enqueued_us: self.now,
                payload: Payload::RebuildWrite {
                    lost,
                    offset: next,
                    len: chunk,
                },
            };
            self.enqueue(dest, sub);
            return;
        }
        self.rebuilds.remove(&lost);
        self.cluster.catalog.record_move(lost, dest);
        self.obs.counter("sim.rebuilds_finished", 1);
        if self.obs.events_on() {
            self.obs.event(ObsEvent::RebuildFinish {
                object: lost.0,
                dest: dest.0,
                bytes: size,
            });
            self.obs.event(ObsEvent::RemapUpdate {
                object: lost.0,
                dest: dest.0,
            });
        }
        self.rebuilt_objects += 1;
        self.last_completion_us = self.now;
    }

    fn finish_subop(&mut self, token: u64) {
        let done = {
            let inflight = self
                .inflight
                .get_mut(token)
                // edm-audit: allow(panic.expect, "engine invariant: sub-op tokens are removed only at the final completion")
                .expect("sub-op for unknown file op");
            inflight.remaining -= 1;
            inflight.remaining == 0
        };
        if done {
            // edm-audit: allow(panic.expect, "same map was read two lines above; token is present")
            let inflight = self.inflight.remove(token).expect("just seen");
            let response = self.now - inflight.issued_us;
            self.responses.record(self.now, response);
            self.response_hist.record(response);
            self.response_sum += response as f64;
            self.obs.latency("response_us", response);
            self.obs.counter("sim.ops_completed", 1);
            self.completed_ops += 1;
            self.last_completion_us = self.now;
            self.outstanding[inflight.client.0 as usize] -= 1;
            if self.options.schedule == MigrationSchedule::Midpoint
                && !self.migration_fired
                && self.completed_ops * 2 >= self.total_records
            {
                self.migration_fired = true;
                self.fire_migration();
            }
            self.fill_client(inflight.client);
        }
    }

    /// A source chunk has been read: write it on the destination.
    fn on_move_read_done(&mut self, object: ObjectId, offset: u64, len: u64) {
        let Some(&action) = self.move_routes.get(&object) else {
            return; // move aborted by a failure mid-chunk
        };
        let sub = SubReq {
            enqueued_us: self.now,
            payload: Payload::MoveWrite {
                object,
                offset,
                len,
            },
        };
        self.enqueue_mover(action.dest, sub);
    }

    /// A destination chunk has been written: continue with the next chunk
    /// or finalize the move.
    fn on_move_write_done(&mut self, object: ObjectId, offset: u64, len: u64) {
        let Some(&action) = self.move_routes.get(&object) else {
            return; // move aborted by a failure mid-chunk
        };
        let size = self
            .cluster
            .object_size(object)
            // edm-audit: allow(panic.expect, "move invariant: move completions only arrive for tracked moves")
            .expect("moving unknown object");
        let next = offset + len;
        if next < size {
            let chunk = (size - next).min(self.cluster.config.move_chunk_bytes);
            let sub = SubReq {
                enqueued_us: self.now,
                payload: Payload::MoveRead {
                    object,
                    offset: next,
                    len: chunk,
                },
            };
            self.enqueue_mover(action.source, sub);
            return;
        }
        // Requests for this object still queued at the source — enqueued
        // before the move started (mover chunks overtake them in the
        // queue), or during it for non-blocking lazy copies — must be
        // redirected to the destination before the source copy disappears.
        // That includes rebuild reads of this object as a surviving
        // sibling: a failure elsewhere enqueues them at the object's
        // location at failure time, which this move has just vacated.
        let mut redirected = Vec::new();
        {
            let queue = &mut self.queues[action.source.0 as usize];
            let mut i = 0;
            while i < queue.len() {
                let matches = matches!(
                    queue[i].payload,
                    Payload::FileIo { object: o, .. } if o == object
                ) || matches!(
                    queue[i].payload,
                    Payload::RebuildRead { sibling, .. } if sibling == object
                );
                if matches {
                    // edm-audit: allow(panic.expect, "index comes from position() on the same queue")
                    redirected.push(queue.remove(i).expect("index checked"));
                } else {
                    i += 1;
                }
            }
        }
        self.cluster.osds[action.source.0 as usize]
            .remove_object(object)
            // edm-audit: allow(panic.expect, "move invariant: the source copy is dropped only after the move completes")
            .expect("source copy must exist until the move completes");
        self.cluster.catalog.record_move(object, action.dest);
        self.obs.counter("sim.moved_objects", 1);
        self.obs.counter("sim.moved_bytes", size);
        if self.obs.events_on() {
            self.obs.event(ObsEvent::MigrationFinish {
                object: object.0,
                source: action.source.0,
                dest: action.dest.0,
                bytes: size,
            });
            self.obs.event(ObsEvent::RemapUpdate {
                object: object.0,
                dest: action.dest.0,
            });
        }
        self.moved_objects += 1;
        self.last_completion_us = self.now;
        self.unblock(object);
        for sub in redirected {
            match sub.payload {
                // Rebuild reads are bound to a device, not routed through
                // the catalog: send them to the sibling's new home.
                Payload::RebuildRead { .. } => self.enqueue(action.dest, sub),
                _ => self.route(sub),
            }
        }
        self.start_next_move(action.source);
    }

    /// Releases the sub-requests parked on a finished (or aborted) move.
    fn unblock(&mut self, object: ObjectId) {
        self.move_routes.remove(&object);
        let parked = self.moving.remove(&object).unwrap_or_default();
        for sub in parked {
            self.route(sub);
        }
    }

    /// Starts the next queued move of one source OSD, if any: allocates
    /// the destination copy and issues the first transfer chunk.
    pub(crate) fn start_next_move(&mut self, source: OsdId) {
        // Moves are component-local work even when the kick comes from
        // the (untagged) migration-planning scope.
        self.scope_component_osd(source);
        let Some(action) = self.move_queues[source.0 as usize].pop_front() else {
            return;
        };
        let size = self
            .cluster
            .object_size(action.object)
            // edm-audit: allow(panic.expect, "move invariant: move completions only arrive for tracked moves")
            .expect("moving unknown object");
        match self.cluster.osds[action.dest.0 as usize].create_object(action.object, size, false) {
            Ok(_) => {}
            Err(OsdError::NoSpace { .. }) => {
                // Destination filled up since planning: skip this move.
                self.failed_moves += 1;
                self.start_next_move(source);
                return;
            }
            // edm-audit: allow(panic.panic, "a failed accepted move means corrupted simulator state; aborting beats mis-simulating")
            Err(e) => panic!("move of {} to {}: {e}", action.object, action.dest),
        }
        self.moving.insert(action.object, Vec::new());
        self.move_routes.insert(action.object, action);
        self.obs.counter("sim.moves_started", 1);
        if self.obs.events_on() {
            self.obs.event(ObsEvent::MigrationStart {
                object: action.object.0,
                source: action.source.0,
                dest: action.dest.0,
                bytes: size,
            });
        }
        let chunk = size.min(self.cluster.config.move_chunk_bytes).max(1);
        let sub = SubReq {
            enqueued_us: self.now,
            payload: Payload::MoveRead {
                object: action.object,
                offset: 0,
                len: chunk,
            },
        };
        self.enqueue_mover(action.source, sub);
    }

    /// Kills an OSD: drops its queue (re-routing foreground requests into
    /// degraded mode), aborts moves touching it, and — when requested —
    /// starts RAID-5 reconstruction of its objects onto surviving group
    /// members.
    fn on_failure(&mut self, osd: OsdId) {
        let o = osd.0 as usize;
        if self.failed[o] {
            return;
        }
        self.failed[o] = true;
        self.obs.counter("sim.device_failures", 1);
        if self.obs.events_on() {
            self.obs.event(ObsEvent::DeviceFailed { osd: osd.0 });
        }

        // Abort every in-flight move that touches the dead device. The
        // routes live in a sorted map so this iterates in ascending object
        // order — the order partial copies are dropped and requests
        // unparked is part of replayed state.
        let touched: Vec<ObjectId> = self
            .move_routes
            .iter()
            .filter(|(_, a)| a.source == osd || a.dest == osd)
            .map(|(&obj, _)| obj)
            .collect();
        for obj in touched {
            let action = *self
                .move_routes
                .get(&obj)
                // edm-audit: allow(panic.expect, "key collected from the same map two lines above")
                .expect("aborted move is tracked");
            // Drop the half-written destination copy (unless the dest
            // itself is the dead device, whose state no longer matters).
            if action.dest != osd && self.cluster.osds[action.dest.0 as usize].has_object(obj) {
                self.cluster.osds[action.dest.0 as usize]
                    .remove_object(obj)
                    // edm-audit: allow(panic.expect, "guarded by has_object on the line above")
                    .expect("partial move copy exists");
            }
            self.obs.counter("sim.aborted_moves", 1);
            if self.obs.events_on() {
                let bytes = self
                    .cluster
                    .object_size(obj)
                    // edm-audit: allow(panic.expect, "move invariant: in-flight moves track cataloged objects")
                    .expect("aborted move's object is cataloged");
                self.obs.event(ObsEvent::MigrationAbort {
                    object: obj.0,
                    source: action.source.0,
                    dest: action.dest.0,
                    bytes,
                });
            }
            self.failed_moves += 1;
            self.unblock(obj);
        }
        self.move_queues[o].clear();
        for q in &mut self.move_queues {
            q.retain(|a| a.dest != osd);
        }
        // Purge mover chunks touching the dead device from every queue,
        // then re-route the dead device's foreground requests. Rebuild
        // chunks queued on the dead device are unfinishable — remember
        // which rebuilds they belonged to so those can be aborted below.
        let drained: Vec<SubReq> = self.queues[o].drain(..).collect();
        let mut dropped_rebuilds: Vec<ObjectId> = Vec::new();
        for sub in drained {
            match sub.payload {
                Payload::FileIo { .. } => self.route(sub),
                Payload::RebuildRead { lost, .. } | Payload::RebuildWrite { lost, .. } => {
                    dropped_rebuilds.push(lost);
                }
                Payload::MoveRead { .. } | Payload::MoveWrite { .. } => {}
            }
        }
        // Abort rebuilds this failure makes unfinishable: those
        // reconstructing onto the dead device, and those whose queued
        // chunks were just dropped with its queue. Their half-written
        // destination copies are removed so directory/catalog agreement
        // holds at the end of the run; sibling reads still in flight
        // elsewhere complete as harmless no-ops.
        let mut aborted: std::collections::BTreeSet<ObjectId> =
            dropped_rebuilds.into_iter().collect();
        aborted.extend(
            self.rebuilds
                .iter()
                .filter(|(_, st)| st.dest == osd)
                .map(|(&lost, _)| lost),
        );
        for lost in aborted {
            let Some(state) = self.rebuilds.remove(&lost) else {
                continue;
            };
            if state.dest != osd && self.cluster.osds[state.dest.0 as usize].has_object(lost) {
                self.cluster.osds[state.dest.0 as usize]
                    .remove_object(lost)
                    // edm-audit: allow(panic.expect, "guarded by has_object on the line above")
                    .expect("partial rebuild copy exists");
            }
            self.obs.counter("sim.aborted_rebuilds", 1);
        }
        let live_moves: std::collections::BTreeSet<ObjectId> =
            self.move_routes.keys().copied().collect();
        for q in &mut self.queues {
            q.retain(|sub| {
                !matches!(
                    sub.payload,
                    Payload::MoveRead { object, .. } | Payload::MoveWrite { object, .. }
                        if !live_moves.contains(&object)
                )
            });
        }

        // Kick off reconstruction of the lost objects.
        let rebuild = self
            .options
            .failures
            .iter()
            .any(|f| f.osd == osd && f.rebuild);
        if !rebuild {
            return;
        }
        let placement = *self.cluster.catalog.placement();
        let lost: Vec<ObjectId> = self
            .cluster
            .view(self.now)
            .objects
            .iter()
            .filter(|ov| ov.osd == osd)
            .map(|ov| ov.object)
            .collect();
        for object in lost {
            let (file, _) = placement.object_owner(object);
            // edm-audit: allow(panic.expect, "catalog invariant: every lost object belongs to a cataloged file")
            let meta = self.cluster.catalog.file(file).expect("lost object's file");
            let size = meta.object_size;
            let siblings: Vec<ObjectId> = meta
                .objects
                .iter()
                .copied()
                .filter(|&s| s != object)
                .collect();
            let alive: Vec<ObjectId> = siblings
                .into_iter()
                .filter(|&s| !self.failed[self.cluster.catalog.locate(s).0 as usize])
                .collect();
            if alive.is_empty() {
                continue; // unrecoverable: left to the lost_ops accounting
            }
            // Destination: the surviving same-group device with the most
            // free space (intra-group, preserving §III.D independence).
            let group = placement.group_of(osd);
            let Some(dest) = placement
                .group_members(group)
                .into_iter()
                .filter(|&m| m != osd && !self.failed[m.0 as usize])
                .max_by_key(|&m| self.cluster.osds[m.0 as usize].free_bytes())
            else {
                continue; // whole group gone
            };
            match self.cluster.osds[dest.0 as usize].create_object(object, size, false) {
                Ok(_) => {}
                Err(OsdError::NoSpace { .. }) => continue,
                // edm-audit: allow(panic.panic, "rebuild allocation is pre-sized against free space; failure is corrupted state")
                Err(e) => panic!("rebuild allocation on {dest}: {e}"),
            }
            self.rebuilds.insert(
                object,
                RebuildState {
                    dest,
                    pending_reads: alive.len() as u32,
                    size,
                },
            );
            self.obs.counter("sim.rebuilds_started", 1);
            if self.obs.events_on() {
                self.obs.event(ObsEvent::RebuildStart {
                    object: object.0,
                    dest: dest.0,
                    bytes: size,
                });
            }
            for sibling in alive {
                let at = self.cluster.catalog.locate(sibling);
                let sub = SubReq {
                    enqueued_us: self.now,
                    payload: Payload::RebuildRead {
                        lost: object,
                        sibling,
                    },
                };
                self.enqueue(at, sub);
            }
        }
    }

    fn fire_migration(&mut self) {
        // Planning is coordinator work in a sharded run: its journal
        // entries (wear inputs, trigger, plan, assessment) stay untagged.
        self.scope_component_none();
        let view = self.cluster.view(self.now);
        self.obs.counter("sim.migration_evaluations", 1);
        let plan = self.policy.plan_obs(&view, self.obs.as_dyn_mut());
        if plan.is_empty() {
            return;
        }
        let placement = *self.cluster.catalog.placement();
        validate_plan(&plan, &view, false, |o| placement.group_of(o))
            // edm-audit: allow(panic.panic, "plans are validated before acceptance; an invalid plan is a policy bug worth aborting on")
            .unwrap_or_else(|e| panic!("policy {} produced invalid plan: {e}", self.policy.name()));

        // Capacity sanitation: never let a destination's free space drop
        // below the configured reserve (§III.B.5 "to avoid disk
        // saturation").
        let mut projected_free: Vec<i64> = self
            .cluster
            .osds
            .iter()
            .map(|o| o.free_bytes() as i64)
            .collect();
        // edm-audit: allow(panic.slice_index, "ClusterConfig validation guarantees at least one OSD")
        let reserve = (self.cluster.osds[0].capacity_bytes() as f64
            * self.cluster.config.dest_free_reserve) as i64;
        // Objects already queued or mid-transfer from an earlier round
        // must not be queued again: the view still shows them on their
        // old source (every-tick scheduling re-plans while moves are
        // pending), so a second accepted move would read from a location
        // the first move has already vacated by the time it starts.
        let pending: std::collections::HashSet<ObjectId> = self
            .move_routes
            .keys()
            .copied()
            .chain(self.move_queues.iter().flatten().map(|a| a.object))
            .collect();
        let mut accepted = 0u64;
        for action in plan {
            if pending.contains(&action.object) {
                self.failed_moves += 1;
                continue;
            }
            // Policies see failed devices in the view (their last measured
            // stats are real); the engine is responsible for never routing
            // a move through one.
            if self.failed[action.source.0 as usize] || self.failed[action.dest.0 as usize] {
                self.failed_moves += 1;
                continue;
            }
            let size = self
                .cluster
                .object_size(action.object)
                // edm-audit: allow(panic.expect, "plan validation already resolved every object against the catalog")
                .expect("plan references unknown object") as i64;
            let dest_free = &mut projected_free[action.dest.0 as usize];
            if *dest_free - size < reserve {
                self.failed_moves += 1;
                continue;
            }
            *dest_free -= size;
            projected_free[action.source.0 as usize] += size;
            self.move_queues[action.source.0 as usize].push_back(action);
            accepted += 1;
        }
        if accepted > 0 {
            self.migrations_triggered += 1;
        }
        for source in 0..self.cluster.config.osds {
            // Each source starts one mover stream; streams run in parallel
            // across sources ("perform all the migration processes in
            // parallel", §III.B.5).
            if self.move_routes.values().all(|a| a.source != OsdId(source)) {
                self.start_next_move(OsdId(source));
            }
        }
    }

    /// Serializes every mutable engine field into the checkpoint's
    /// "engine" section. The [`CheckpointConfig`] itself is deliberately
    /// *not* saved: paths and cadence belong to the resuming process.
    fn save_engine(&self, w: &mut SnapWriter) {
        self.options.schedule.save(w);
        self.options.failures.save(w);
        w.put_bool(self.blocking_moves);
        // The calendar queue has unspecified internal order; canonicalize
        // as the ascending (at, seq, event) list — the exact bytes the old
        // binary-heap encoding produced.
        self.queue.to_sorted_vec().save(w);
        w.put_u64(self.seq);
        w.put_u64(self.now);
        w.put_u64(self.last_ckpt_us);
        self.cursors.save(w);
        self.outstanding.save(w);
        self.inflight.save(w);
        w.put_u64(self.next_token);
        self.queues.save(w);
        self.current.save(w);
        self.busy_us.save(w);
        self.peak_queue_depth.save(w);
        self.moving.save(w);
        self.move_routes.save(w);
        self.move_queues.save(w);
        self.failed.save(w);
        self.rebuilds.save(w);
        w.put_u64(self.degraded_ops);
        w.put_u64(self.lost_ops);
        w.put_u64(self.rebuilt_objects);
        self.responses.save(w);
        self.response_hist.save(w);
        w.put_f64(self.response_sum);
        w.put_u64(self.completed_ops);
        w.put_u64(self.total_records);
        w.put_bool(self.migration_fired);
        w.put_u64(self.migrations_triggered);
        w.put_u64(self.moved_objects);
        w.put_u64(self.failed_moves);
        w.put_u64(self.last_completion_us);
    }

    /// Mirror of [`save_engine`](Self::save_engine), applied to a freshly
    /// constructed engine. Derived state (`scripts`) is recomputed from
    /// the trace, so the loaded fields are cross-checked against it.
    pub(crate) fn load_engine(&mut self, r: &mut SnapReader) {
        self.options.schedule = MigrationSchedule::load(r);
        self.options.failures = Vec::load(r);
        let blocking = r.take_bool();
        if !r.failed() && blocking != self.blocking_moves {
            r.corrupt("policy blocking-moves mode differs from checkpoint");
        }
        for (at, seq, ev) in Vec::<(u64, u64, Event)>::load(r) {
            self.queue.push(at, seq, ev);
        }
        self.seq = r.take_u64();
        self.now = r.take_u64();
        self.last_ckpt_us = r.take_u64();
        self.cursors = Vec::load(r);
        self.outstanding = Vec::load(r);
        self.inflight = TokenMap::load(r);
        self.next_token = r.take_u64();
        self.queues = Vec::load(r);
        self.current = Vec::load(r);
        self.busy_us = Vec::load(r);
        self.peak_queue_depth = Vec::load(r);
        self.moving = FlatMap::load(r);
        self.move_routes = FlatMap::load(r);
        self.move_queues = Vec::load(r);
        self.failed = Vec::load(r);
        self.rebuilds = FlatMap::load(r);
        self.degraded_ops = r.take_u64();
        self.lost_ops = r.take_u64();
        self.rebuilt_objects = r.take_u64();
        self.responses = ResponseSeries::load(r);
        self.response_hist = LatencyHistogram::load(r);
        self.response_sum = r.take_f64();
        self.completed_ops = r.take_u64();
        self.total_records = r.take_u64();
        self.migration_fired = r.take_bool();
        self.migrations_triggered = r.take_u64();
        self.moved_objects = r.take_u64();
        self.failed_moves = r.take_u64();
        self.last_completion_us = r.take_u64();
        if r.failed() {
            return;
        }
        let osds = self.cluster.config.osds as usize;
        let per_osd_ok = self.queues.len() == osds
            && self.current.len() == osds
            && self.busy_us.len() == osds
            && self.peak_queue_depth.len() == osds
            && self.move_queues.len() == osds
            && self.failed.len() == osds;
        if !per_osd_ok {
            r.corrupt("per-OSD state length disagrees with the cluster");
            return;
        }
        let clients_ok = self.cursors.len() == self.scripts.len()
            && self.outstanding.len() == self.scripts.len()
            && self
                .cursors
                .iter()
                .zip(&self.scripts)
                .all(|(&c, s)| c <= s.len());
        if !clients_ok {
            r.corrupt("client cursors disagree with the trace's scripts");
            return;
        }
        if self.total_records != self.trace.records.len() as u64 {
            r.corrupt(format!(
                "checkpoint replays {} records but the trace has {}",
                self.total_records,
                self.trace.records.len()
            ));
        }
    }

    /// Captures the complete simulation state as a snapshot file.
    pub(crate) fn to_snapshot(&self) -> SnapshotFile {
        let manifest = SnapManifest {
            now_us: self.now,
            completed_ops: self.completed_ops,
            total_records: self.total_records,
            policy: self.policy.name().to_string(),
            per_osd_erases: self
                .cluster
                .osds
                .iter()
                .map(|o| o.ssd().wear().block_erases)
                .collect(),
            extra: self
                .options
                .checkpoint
                .as_ref()
                .map(|c| c.meta.clone())
                .unwrap_or_default(),
        };
        let mut file = SnapshotFile::new();
        file.push(SnapManifest::SECTION, &manifest);
        file.push("cluster", &self.cluster);
        let mut w = SnapWriter::new();
        self.save_engine(&mut w);
        file.push_section("engine", w);
        let mut w = SnapWriter::new();
        self.policy.save_state(&mut w);
        file.push_section("policy", w);
        file
    }

    /// Cuts a checkpoint if one is due. Called at wear-monitor ticks —
    /// the only event with no mid-decision state on the stack.
    fn maybe_checkpoint(&mut self) {
        let Some(ck) = &self.options.checkpoint else {
            return;
        };
        if self.now < self.last_ckpt_us.saturating_add(ck.every_us) {
            return;
        }
        self.last_ckpt_us = self.now;
        let path = ck.dir.join(format!("ckpt_{:020}.snap", self.now));
        let _ = std::fs::create_dir_all(&ck.dir);
        self.obs.counter("sim.checkpoints", 1);
        self.to_snapshot()
            .write_to(&path)
            // edm-audit: allow(panic.panic, "checkpoint I/O failure is unrecoverable for the run; abort with the path in the message")
            .unwrap_or_else(|e| panic!("checkpoint write to {} failed: {e}", path.display()));
    }

    /// Fills every client's concurrency window — the first third of
    /// seeding. Clients whose script is empty (foreign components in a
    /// sharded run) are no-ops.
    pub(crate) fn seed_clients(&mut self) {
        let clients = self.scripts.len() as u32;
        for c in 0..clients {
            self.scope_component_client(ClientId(c));
            self.fill_client(ClientId(c));
        }
        self.scope_component_none();
    }

    /// Schedules a wear-monitor tick marker at `at`. In sequential runs
    /// the engine handles the tick itself; in sharded runs it pauses there
    /// for the coordinator's barrier.
    pub(crate) fn seed_tick(&mut self, at: u64) {
        self.push(at, Event::Tick);
    }

    /// Schedules the injected failures this engine owns, in the global
    /// option order (so a sharded run's per-component sequence is exactly
    /// the sequential sequence restricted to that component).
    pub(crate) fn seed_failures<F: Fn(OsdId) -> bool>(&mut self, owns: F) {
        for i in 0..self.options.failures.len() {
            let f = self.options.failures[i];
            assert!(
                f.osd.0 < self.cluster.config.osds,
                "failure injected for unknown {}",
                f.osd
            );
            if owns(f.osd) {
                self.push(f.at_us, Event::Fail(f.osd.0));
            }
        }
    }

    /// Seeds the initial events of a fresh (non-resumed) run: the client
    /// concurrency windows, the first wear tick, and the injected
    /// failures.
    pub(crate) fn seed_events(&mut self) {
        self.seed_clients();
        if self.total_records > 0 {
            let tick = self.cluster.config.wear_tick_us;
            self.seed_tick(tick);
        }
        self.seed_failures(|_| true);
    }

    /// Pops and dispatches events until a wear-monitor tick is due (time
    /// already advanced to it, body not yet run) or the queue is empty;
    /// records where it stopped in `self.paused`.
    pub(crate) fn run_until_pause(&mut self) {
        // SimTime never yields, so the return value carries no
        // information on this path.
        let _ = self.run_paced(&mut SimTime);
    }

    /// [`run_until_pause`](Self::run_until_pause) under an explicit
    /// [`TimeSource`]: before each event is dispatched the source is
    /// consulted, and on [`TimeStep::Yield`] the event is re-enqueued
    /// under its original `(time, seq)` key and control returns to the
    /// caller with `true` ("yielded"; `self.paused` is untouched). The
    /// re-push is order-safe: [`CalendarQueue`] clamps a past-time push
    /// into the current bucket's sorted run, so the next pop sees the
    /// exact event it would have seen without the yield. This is what
    /// lets a live daemon pace the same deterministic engine against a
    /// dilated wall clock without perturbing the replay digest.
    pub(crate) fn run_paced(&mut self, pace: &mut dyn TimeSource) -> bool {
        while let Some((at, seq, ev)) = self.queue.pop() {
            debug_assert!(at >= self.now, "time went backwards");
            if pace.wait_until(at) == TimeStep::Yield {
                self.queue.push(at, seq, ev);
                return true;
            }
            self.now = at;
            self.obs.set_now(at);
            match ev {
                Event::OsdDone(o) => {
                    self.scope_component_osd(OsdId(o));
                    self.on_osd_done(OsdId(o));
                }
                Event::MdsDone(token) => {
                    let client = self.inflight.get(token).map(|i| i.client);
                    if let Some(client) = client {
                        self.scope_component_client(client);
                    }
                    self.finish_subop(token);
                }
                Event::Fail(o) => {
                    self.scope_component_osd(OsdId(o));
                    self.on_failure(OsdId(o));
                }
                Event::Tick => {
                    self.paused = Pause::Tick;
                    return false;
                }
            }
        }
        self.paused = Pause::Done;
        false
    }

    /// The wear-monitor tick body: sample queue depths, notify the policy,
    /// fire continuous-mode migration, schedule the next tick, and cut a
    /// checkpoint if one is due. Sequential runs call this between
    /// [`run_until_pause`](Self::run_until_pause) legs; sharded runs
    /// replace it with the coordinator's barrier.
    pub(crate) fn handle_tick(&mut self) {
        // The tick body is the sharded coordinator's job; its journal
        // entries are untagged in both engines.
        self.scope_component_none();
        self.obs.counter("sim.ticks", 1);
        if self.obs.events_on() {
            // Periodic queue-depth samples: waiting requests
            // plus the one in service, per OSD.
            for o in 0..self.queues.len() {
                self.obs.event(ObsEvent::QueueDepth {
                    osd: o as u32,
                    depth: self.queues[o].len() as u64 + self.current[o].is_some() as u64,
                });
            }
        }
        self.policy.on_tick(self.now);
        if self.options.schedule == MigrationSchedule::EveryTick {
            self.fire_migration();
            // Continuous mode measures per-period rates: close
            // the window on both sides (§III.B.2 recomputes
            // Eq. 4 every minute over that minute's writes).
            for osd in &mut self.cluster.osds {
                osd.reset_wc_window();
            }
            self.policy.on_window_reset();
        }
        // Keep ticking while the replay is still in progress.
        if self.completed_ops < self.total_records {
            let next = self.now + self.cluster.config.wear_tick_us;
            self.push(next, Event::Tick);
        }
        // Checkpoint *after* the next tick is scheduled so the
        // snapshot's event queue is exactly the resumed run's.
        self.maybe_checkpoint();
    }

    /// Drains the event queue to completion and builds the report. Both
    /// fresh and resumed runs end up here, which is what makes resume
    /// bit-identical: the loop has no idea the process was ever restarted.
    fn drain(mut self) -> (RunReport, Cluster) {
        loop {
            self.run_until_pause();
            match self.paused {
                Pause::Tick => self.handle_tick(),
                Pause::Done => break,
            }
        }
        self.finalize()
    }

    /// End-of-run invariant checks and report construction.
    pub(crate) fn finalize(self) -> (RunReport, Cluster) {
        assert_eq!(
            self.completed_ops, self.total_records,
            "replay finished with unserved records"
        );
        assert!(self.moving.is_empty(), "moves left in flight");

        let mut per_osd = summarize_osds(self.cluster.osds.iter().map(|o| {
            (
                o.id.0,
                o.ssd().wear(),
                o.utilization(),
                self.busy_us[o.id.0 as usize],
            )
        }));
        for (summary, &peak) in per_osd.iter_mut().zip(&self.peak_queue_depth) {
            summary.peak_queue_depth = peak;
        }
        let report = RunReport {
            trace: self.trace.name.clone(),
            policy: self.policy.name().to_string(),
            osds: self.cluster.config.osds,
            completed_ops: self.completed_ops,
            duration_us: self.last_completion_us,
            mean_response_us: if self.completed_ops > 0 {
                self.response_sum / self.completed_ops as f64
            } else {
                0.0
            },
            response_percentiles_us: (
                self.response_hist.quantile(0.50),
                self.response_hist.quantile(0.95),
                self.response_hist.quantile(0.99),
            ),
            response_windows: self.responses.windows(),
            per_osd,
            moved_objects: self.moved_objects,
            remap_entries: self.cluster.catalog.remap().len() as u64,
            total_objects: self.cluster.catalog.total_objects(),
            migrations_triggered: self.migrations_triggered,
            failed_osds: (0..self.cluster.config.osds)
                .filter(|&i| self.failed[i as usize])
                .collect(),
            degraded_ops: self.degraded_ops,
            lost_ops: self.lost_ops,
            rebuilt_objects: self.rebuilt_objects,
        };
        (report, self.cluster)
    }
}

/// Replays `trace` against a freshly built cluster under `policy`.
///
/// This is the top-level entry point used by every experiment: build,
/// warm up, replay, report.
pub fn run_trace(
    cluster: Cluster,
    trace: &Trace,
    policy: &mut dyn Migrator,
    options: SimOptions,
) -> RunReport {
    run_trace_obs(cluster, trace, policy, options, &mut NoopRecorder)
}

/// [`run_trace`] with an observability sink: the engine stamps virtual
/// time and device scope on the recorder, journals queue/migration/remap
/// events, and feeds latency histograms. Recording is read-only — the
/// returned report is bit-identical at every obs level.
pub fn run_trace_obs(
    cluster: Cluster,
    trace: &Trace,
    policy: &mut dyn Migrator,
    options: SimOptions,
    obs: &mut dyn Recorder,
) -> RunReport {
    run_trace_obs_keep(cluster, trace, policy, options, obs).0
}

/// [`run_trace_obs`], additionally handing back the final [`Cluster`] so
/// callers can inspect (or snapshot) the end state of every device.
pub fn run_trace_obs_keep(
    cluster: Cluster,
    trace: &Trace,
    policy: &mut dyn Migrator,
    options: SimOptions,
    obs: &mut dyn Recorder,
) -> (RunReport, Cluster) {
    emit_run_meta(&cluster, obs);
    if let Some(plan) = crate::shard::plan_sharding(&cluster, trace, policy, &options) {
        return crate::shard::run_sharded(cluster, trace, policy, options, obs, plan);
    }
    let mut engine = new_engine(cluster, trace, policy, options, obs);
    engine.seed_events();
    engine.drain()
}

/// Resumes a checkpointed run from `snap` and drains it to completion.
///
/// The caller rebuilds the same world the checkpoint was cut in — the
/// same trace (verify with [`Trace::fingerprint`](edm_workload::Trace)
/// against the manifest's caller metadata) and a policy whose `name()`
/// matches the manifest — and passes the run's [`SimOptions`] so derived
/// state (notably the [`ClientAffinity`] scripts) is rebuilt identically;
/// `schedule` and `failures` are overwritten from the checkpoint, and a
/// fresh `checkpoint` config keeps checkpointing. Resumed runs always
/// drain sequentially (`shards` is ignored: a checkpoint cut mid-interval
/// has no barrier-aligned split point). The resumed run's report is
/// bit-identical to the uninterrupted run's.
pub fn resume_trace_obs(
    snap: &SnapshotFile,
    trace: &Trace,
    policy: &mut dyn Migrator,
    options: SimOptions,
    obs: &mut dyn Recorder,
) -> Result<RunReport, SnapError> {
    resume_trace_obs_keep(snap, trace, policy, options, obs).map(|(report, _)| report)
}

/// [`resume_trace_obs`], additionally handing back the final [`Cluster`].
pub fn resume_trace_obs_keep(
    snap: &SnapshotFile,
    trace: &Trace,
    policy: &mut dyn Migrator,
    options: SimOptions,
    obs: &mut dyn Recorder,
) -> Result<(RunReport, Cluster), SnapError> {
    let manifest = SnapManifest::from_snapshot(snap)?;
    if manifest.policy != policy.name() {
        return Err(SnapError::Corrupt {
            section: SnapManifest::SECTION.into(),
            detail: format!(
                "checkpoint was cut under policy {:?}, cannot resume with {:?}",
                manifest.policy,
                policy.name()
            ),
        });
    }
    let cluster: Cluster = snap.decode("cluster")?;
    {
        let mut r = snap.reader("policy")?;
        policy.load_state(&mut r);
        r.finish("policy")?;
    }
    emit_run_meta(&cluster, obs);
    let mut engine = new_engine(cluster, trace, policy, options, obs);
    let mut r = snap.reader("engine")?;
    engine.load_engine(&mut r);
    r.finish("engine")?;
    Ok(engine.drain())
}

/// Journals the run preamble ([`edm_obs::Event::RunMeta`]) the
/// conformance checker keys on: cluster shape and device geometry.
/// Emitted on the parent recorder *before* the shard branch so the
/// sequential and sharded paths produce the same preamble.
pub(crate) fn emit_run_meta(cluster: &Cluster, obs: &mut dyn Recorder) {
    if !obs.events_on() {
        return;
    }
    // edm-audit: allow(panic.slice_index, "ClusterConfig validation guarantees at least one OSD")
    let geometry = cluster.osds[0].ssd().geometry();
    obs.set_now(0);
    obs.event(ObsEvent::RunMeta {
        osds: cluster.config.osds,
        groups: cluster.config.groups,
        objects_per_file: cluster.config.objects_per_file,
        // edm-audit: allow(panic.slice_index, "ClusterConfig validation guarantees at least one OSD")
        capacity_bytes: cluster.osds[0].capacity_bytes(),
        blocks_per_osd: geometry.blocks as u64,
    });
}

/// Builds the client scripts for `trace` under the requested affinity.
fn build_scripts(cluster: &Cluster, trace: &Trace, affinity: ClientAffinity) -> Vec<Vec<usize>> {
    let clients = cluster.config.client_count();
    match affinity {
        ClientAffinity::User => edm_workload::replay::assign_clients(trace, clients)
            .into_iter()
            .map(|s| s.record_indices)
            .collect(),
        ClientAffinity::Component => crate::shard::component_scripts(cluster, trace, clients),
    }
}

/// Builds a pristine engine around `cluster` — the shared front half of
/// the fresh-run and resume paths.
pub(crate) fn new_engine<'a, P: Migrator + ?Sized, R: Recorder + AsDynRecorder + ?Sized>(
    cluster: Cluster,
    trace: &'a Trace,
    policy: &'a mut P,
    options: SimOptions,
    obs: &'a mut R,
) -> Engine<'a, P, R> {
    let scripts = build_scripts(&cluster, trace, options.affinity);
    let comp_tags = if options.affinity == ClientAffinity::Component && obs.events_on() {
        Some(CompTags::build(&cluster, trace, &scripts))
    } else {
        None
    };
    let osds = cluster.config.osds as usize;
    let window = cluster.config.response_window_us;
    let blocking_moves = policy.blocking_moves();
    // edm-audit: allow(panic.slice_index, "ClusterConfig validation guarantees at least one OSD")
    let page_size = cluster.osds[0].ssd().geometry().page_size;
    Engine {
        cluster,
        trace,
        policy,
        options,
        obs,
        queue: CalendarQueue::new(),
        seq: 0,
        now: 0,
        cursors: vec![0; scripts.len()],
        outstanding: vec![0; scripts.len()],
        scripts,
        inflight: TokenMap::new(),
        next_token: 0,
        queues: (0..osds).map(|_| VecDeque::new()).collect(),
        current: vec![None; osds],
        busy_us: vec![0; osds],
        peak_queue_depth: vec![0; osds],
        blocking_moves,
        moving: FlatMap::new(),
        move_routes: FlatMap::new(),
        move_queues: (0..osds).map(|_| VecDeque::new()).collect(),
        failed: vec![false; osds],
        rebuilds: FlatMap::new(),
        degraded_ops: 0,
        lost_ops: 0,
        rebuilt_objects: 0,
        responses: ResponseSeries::new(window),
        response_hist: LatencyHistogram::new(),
        response_sum: 0.0,
        completed_ops: 0,
        total_records: trace.records.len() as u64,
        migration_fired: false,
        migrations_triggered: 0,
        moved_objects: 0,
        failed_moves: 0,
        last_completion_us: 0,
        last_ckpt_us: 0,
        page_size,
        paused: Pause::Done,
        comp_tags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::migrate::{ClusterView, NoMigration};
    use edm_workload::{harvard, synth::synthesize};

    fn small_trace() -> Trace {
        synthesize(&harvard::spec("deasna").scaled(0.001))
    }

    fn run_baseline(schedule: MigrationSchedule) -> RunReport {
        let trace = small_trace();
        let cluster = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        run_trace(
            cluster,
            &trace,
            &mut NoMigration,
            SimOptions {
                schedule,
                ..SimOptions::default()
            },
        )
    }

    #[test]
    fn baseline_completes_every_record() {
        let trace = small_trace();
        let report = run_baseline(MigrationSchedule::Never);
        assert_eq!(report.completed_ops, trace.records.len() as u64);
        assert!(report.duration_us > 0);
        assert!(report.throughput_ops_per_sec() > 0.0);
        assert!(report.mean_response_us > 0.0);
        assert_eq!(report.moved_objects, 0);
        assert_eq!(report.remap_entries, 0);
    }

    #[test]
    fn baseline_wears_ssds() {
        let report = run_baseline(MigrationSchedule::Never);
        assert!(report.aggregate_write_pages() > 0);
        // Per-OSD write pages roughly track the trace's skew: at least one
        // OSD must have seen writes.
        assert!(report.per_osd.iter().any(|o| o.write_pages > 0));
    }

    #[test]
    fn midpoint_schedule_with_noop_policy_changes_nothing() {
        let never = run_baseline(MigrationSchedule::Never);
        let midpoint = run_baseline(MigrationSchedule::Midpoint);
        assert_eq!(never.completed_ops, midpoint.completed_ops);
        assert_eq!(never.duration_us, midpoint.duration_us);
        assert_eq!(never.aggregate_erases(), midpoint.aggregate_erases());
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_baseline(MigrationSchedule::Never);
        let b = run_baseline(MigrationSchedule::Never);
        assert_eq!(a.duration_us, b.duration_us);
        assert_eq!(a.aggregate_erases(), b.aggregate_erases());
        assert_eq!(a.mean_response_us, b.mean_response_us);
    }

    /// A policy that moves one object from the most-written OSD to the
    /// least-written OSD of the same group.
    struct MoveOne;

    impl Migrator for MoveOne {
        fn name(&self) -> &str {
            "MoveOne"
        }
        fn plan(&mut self, view: &ClusterView) -> Vec<MoveAction> {
            let mut osds = view.osds.clone();
            osds.sort_by_key(|o| std::cmp::Reverse(o.wc_pages));
            let source = &osds[0];
            let dest = osds
                .iter()
                .rev()
                .find(|o| o.group == source.group && o.osd != source.osd)
                .expect("group has at least two members");
            let obj = view
                .objects_on(source.osd)
                .next()
                .expect("source holds objects");
            vec![MoveAction {
                object: obj.object,
                source: source.osd,
                dest: dest.osd,
            }]
        }
    }

    #[test]
    fn migration_moves_objects_and_updates_remap() {
        let trace = small_trace();
        let cluster = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        let report = run_trace(
            cluster,
            &trace,
            &mut MoveOne,
            SimOptions {
                schedule: MigrationSchedule::Midpoint,
                ..SimOptions::default()
            },
        );
        assert_eq!(report.completed_ops, trace.records.len() as u64);
        assert_eq!(report.moved_objects, 1);
        assert_eq!(report.remap_entries, 1);
        assert_eq!(report.migrations_triggered, 1);
    }

    #[test]
    fn observability_is_read_only() {
        use edm_obs::{MemoryRecorder, ObsLevel};
        let trace = small_trace();
        let baseline = {
            let cluster = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
            run_trace(
                cluster,
                &trace,
                &mut MoveOne,
                SimOptions {
                    schedule: MigrationSchedule::Midpoint,
                    ..SimOptions::default()
                },
            )
        };
        for level in [ObsLevel::Off, ObsLevel::Metrics, ObsLevel::Events] {
            let cluster = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
            let mut rec = MemoryRecorder::new(level);
            let report = run_trace_obs(
                cluster,
                &trace,
                &mut MoveOne,
                SimOptions {
                    schedule: MigrationSchedule::Midpoint,
                    ..SimOptions::default()
                },
                &mut rec,
            );
            assert_eq!(report.duration_us, baseline.duration_us, "level {level:?}");
            assert_eq!(
                report.mean_response_us, baseline.mean_response_us,
                "level {level:?}"
            );
            assert_eq!(
                report.aggregate_erases(),
                baseline.aggregate_erases(),
                "level {level:?}"
            );
            assert_eq!(report.moved_objects, baseline.moved_objects);
            if level >= ObsLevel::Metrics {
                assert_eq!(rec.counter_value("sim.ops_completed"), report.completed_ops);
                assert_eq!(rec.counter_value("sim.moved_objects"), report.moved_objects);
                assert_eq!(
                    rec.histogram("response_us").unwrap().count(),
                    report.completed_ops
                );
            }
            if level == ObsLevel::Events {
                assert_eq!(
                    rec.count_kind("migration_finish") as u64,
                    report.moved_objects
                );
                assert_eq!(rec.count_kind("remap_update") as u64, report.remap_entries);
                assert!(rec.count_kind("op_enqueue") > 0);
                assert!(rec.count_kind("op_dequeue") > 0);
                assert!(rec.count_kind("queue_depth") > 0);
                // FTL events inherit the engine clock and device scope.
                assert!(rec
                    .journal()
                    .iter()
                    .filter(|e| e.event.kind() == "block_erase")
                    .all(|e| e.device.is_some()));
            } else {
                assert!(rec.journal().is_empty());
            }
        }
    }

    #[test]
    fn response_windows_cover_the_run() {
        let report = run_baseline(MigrationSchedule::Never);
        assert!(!report.response_windows.is_empty());
        let total: u64 = report
            .response_windows
            .iter()
            .map(|w| w.completed_ops)
            .sum();
        assert_eq!(total, report.completed_ops);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let trace = Trace::new("empty");
        // Build needs at least something to size capacity against; an
        // empty trace gives minimal SSDs and zero events.
        let cluster = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        let report = run_trace(cluster, &trace, &mut NoMigration, SimOptions::default());
        assert_eq!(report.completed_ops, 0);
        assert_eq!(report.duration_us, 0);
        assert_eq!(report.throughput_ops_per_sec(), 0.0);
    }
}

#[cfg(test)]
mod blocking_tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::migrate::ClusterView;
    use edm_workload::{harvard, synth::synthesize};

    /// Moves every object of the busiest OSD (by object count) to its
    /// least-populated group peer; used to compare blocking vs lazy moves.
    struct MoveGroupmates {
        blocking: bool,
    }

    impl Migrator for MoveGroupmates {
        fn name(&self) -> &str {
            "MoveGroupmates"
        }
        fn blocking_moves(&self) -> bool {
            self.blocking
        }
        fn plan(&mut self, view: &ClusterView) -> Vec<MoveAction> {
            let count = |osd: OsdId| view.objects_on(osd).count();
            let src = view
                .osds
                .iter()
                .max_by_key(|o| count(o.osd))
                .expect("osds exist");
            let dst = view
                .osds
                .iter()
                .filter(|o| o.group == src.group && o.osd != src.osd)
                .min_by_key(|o| count(o.osd))
                .expect("group peer exists");
            view.objects_on(src.osd)
                .map(|o| MoveAction {
                    object: o.object,
                    source: src.osd,
                    dest: dst.osd,
                })
                .collect()
        }
    }

    fn run_mode(blocking: bool) -> RunReport {
        let trace = synthesize(&harvard::spec("home02").scaled(0.002));
        let cluster = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        let mut policy = MoveGroupmates { blocking };
        run_trace(cluster, &trace, &mut policy, SimOptions::default())
    }

    #[test]
    fn lazy_moves_disturb_foreground_less_than_blocking_moves() {
        let blocking = run_mode(true);
        let lazy = run_mode(false);
        // Same plan, same destination state...
        assert_eq!(blocking.moved_objects, lazy.moved_objects);
        assert!(blocking.moved_objects > 0);
        assert_eq!(
            blocking.completed_ops, lazy.completed_ops,
            "both modes serve everything"
        );
        // ...but blocking parks every request to the in-flight objects
        // (§V.D's HDF spike), so its p99 cannot beat the lazy copier's.
        let p99 = |r: &RunReport| r.response_percentiles_us.2;
        assert!(
            p99(&blocking) >= p99(&lazy),
            "blocking p99 {} should be >= lazy p99 {}",
            p99(&blocking),
            p99(&lazy)
        );
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::migrate::{ClusterView, NoMigration};
    use edm_workload::{harvard, synth::synthesize};
    use std::path::PathBuf;

    /// Group-local balancer that fires one burst of moves at the first
    /// tick, so checkpoints are cut with migration state on the books.
    /// The fired-flag makes it stateful: a resume that failed to restore
    /// policy state would re-plan and diverge, which the tests catch.
    struct Spreader {
        planned: bool,
    }

    impl Migrator for Spreader {
        fn name(&self) -> &str {
            "Spreader"
        }
        fn plan(&mut self, view: &ClusterView) -> Vec<MoveAction> {
            if self.planned {
                return Vec::new();
            }
            self.planned = true;
            let count = |osd: OsdId| view.objects_on(osd).count();
            let src = view
                .osds
                .iter()
                .max_by_key(|o| count(o.osd))
                .expect("osds exist");
            let Some(dst) = view
                .osds
                .iter()
                .filter(|o| o.group == src.group && o.osd != src.osd)
                .min_by_key(|o| count(o.osd))
            else {
                return Vec::new();
            };
            view.objects_on(src.osd)
                .take(4)
                .map(|o| MoveAction {
                    object: o.object,
                    source: src.osd,
                    dest: dst.osd,
                })
                .collect()
        }
        fn save_state(&self, w: &mut SnapWriter) {
            w.put_bool(self.planned);
        }
        fn load_state(&mut self, r: &mut SnapReader) {
            self.planned = r.take_bool();
        }
    }

    fn ckpt_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("edm-sim-{tag}-{}", std::process::id()))
    }

    /// Continuous migration plus a mid-run failure with rebuild — the
    /// most state-heavy scenario the engine supports.
    fn scenario() -> (Trace, ClusterConfig, SimOptions) {
        let trace = synthesize(&harvard::spec("home02").scaled(0.002));
        // A short wear tick makes the ~minute-long replay span many ticks,
        // so checkpoints land while requests, moves, and the rebuild are
        // all in flight.
        let mut config = ClusterConfig::test_small();
        config.wear_tick_us = 50_000;
        let options = SimOptions {
            schedule: MigrationSchedule::EveryTick,
            failures: vec![FailureSpec {
                at_us: 150_000,
                osd: OsdId(1),
                rebuild: true,
            }],
            ..SimOptions::default()
        };
        (trace, config, options)
    }

    #[test]
    fn resume_mid_run_is_bit_identical() {
        let (trace, config, options) = scenario();
        let baseline = {
            let cluster = Cluster::build(config.clone(), &trace).unwrap();
            run_trace(
                cluster,
                &trace,
                &mut Spreader { planned: false },
                options.clone(),
            )
        };
        assert!(!baseline.failed_osds.is_empty(), "failure must fire");
        assert!(baseline.moved_objects > 0, "migration must fire");

        let dir = ckpt_dir("resume");
        let _ = std::fs::remove_dir_all(&dir);
        let with_ckpt = {
            let cluster = Cluster::build(config.clone(), &trace).unwrap();
            let opts = SimOptions {
                checkpoint: Some(CheckpointConfig {
                    every_us: config.wear_tick_us,
                    dir: dir.clone(),
                    meta: b"cluster-test".to_vec(),
                }),
                ..options.clone()
            };
            run_trace(cluster, &trace, &mut Spreader { planned: false }, opts)
        };
        assert_eq!(
            format!("{baseline:?}"),
            format!("{with_ckpt:?}"),
            "checkpointing must not perturb the run"
        );

        let mut snaps: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        snaps.sort();
        assert!(snaps.len() >= 2, "expected several checkpoints: {snaps:?}");
        let snap = SnapshotFile::read_from(&snaps[snaps.len() / 2]).unwrap();
        let manifest = SnapManifest::from_snapshot(&snap).unwrap();
        assert!(manifest.completed_ops > 0);
        assert!(manifest.completed_ops < manifest.total_records);
        assert_eq!(manifest.extra, b"cluster-test");
        assert_eq!(manifest.policy, "Spreader");

        let resumed = resume_trace_obs(
            &snap,
            &trace,
            &mut Spreader { planned: false },
            SimOptions::default(),
            &mut NoopRecorder,
        )
        .unwrap();
        assert_eq!(
            format!("{baseline:?}"),
            format!("{resumed:?}"),
            "resumed run must reproduce the uninterrupted run bit-identically"
        );

        // Also resume from the earliest checkpoint — cut before the
        // injected failure, with the first move burst still in flight —
        // so the resumed run replays the failure and rebuild itself.
        let early = SnapshotFile::read_from(&snaps[0]).unwrap();
        let m = SnapManifest::from_snapshot(&early).unwrap();
        assert!(m.now_us < 150_000, "first checkpoint predates the failure");
        let resumed_early = resume_trace_obs(
            &early,
            &trace,
            &mut Spreader { planned: false },
            SimOptions::default(),
            &mut NoopRecorder,
        )
        .unwrap();
        assert_eq!(format!("{baseline:?}"), format!("{resumed_early:?}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_wrong_policy() {
        let trace = synthesize(&harvard::spec("deasna").scaled(0.001));
        let dir = ckpt_dir("wrongpol");
        let _ = std::fs::remove_dir_all(&dir);
        let cluster = Cluster::build(ClusterConfig::test_small(), &trace).unwrap();
        let opts = SimOptions {
            schedule: MigrationSchedule::Never,
            checkpoint: Some(CheckpointConfig {
                every_us: 0,
                dir: dir.clone(),
                meta: Vec::new(),
            }),
            ..SimOptions::default()
        };
        let _ = run_trace(cluster, &trace, &mut NoMigration, opts);
        let mut snaps: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        snaps.sort();
        let snap = SnapshotFile::read_from(&snaps[0]).unwrap();
        let err = resume_trace_obs(
            &snap,
            &trace,
            &mut Spreader { planned: false },
            SimOptions::default(),
            &mut NoopRecorder,
        )
        .unwrap_err();
        assert!(matches!(err, SnapError::Corrupt { .. }), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Strongly typed identifiers used across the cluster simulator.

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

/// Index of an OSD (object-based storage device) in the cluster; the paper
/// numbers the `n` OSDs 0..n and derives placement from `inode mod n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OsdId(pub u32);

/// Index of an SSD group (§III.A): group *i* contains OSDs
/// `{i, m+i, 2m+i, ...}`; migration is restricted to within a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

/// Cluster-wide object identifier. The paper allocates object numbers
/// continuously (§V intro); we use `inode * k + object_index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// A load-generating replay client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl std::fmt::Display for OsdId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "osd{}", self.0)
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "group{}", self.0)
    }
}

macro_rules! id_snapshot {
    ($ty:ident, $put:ident, $take:ident) => {
        impl Snapshot for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.$put(self.0);
            }
            fn load(r: &mut SnapReader) -> Self {
                $ty(r.$take())
            }
        }
    };
}

id_snapshot!(OsdId, put_u32, take_u32);
id_snapshot!(GroupId, put_u32, take_u32);
id_snapshot!(ObjectId, put_u64, take_u64);
id_snapshot!(ClientId, put_u32, take_u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(OsdId(1) < OsdId(2));
        assert_eq!(OsdId(3).to_string(), "osd3");
        assert_eq!(ObjectId(9).to_string(), "obj9");
        assert_eq!(GroupId(0).to_string(), "group0");
        assert_eq!(ClientId(1), ClientId(1));
    }
}

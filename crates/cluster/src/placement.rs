//! Hash-based object placement and SSD groups (§III.A).
//!
//! Each file gets `k` objects placed on `k` continuous SSDs starting at
//! `inode mod n`. The `n` SSDs are partitioned into `m` groups with
//! `group(ssd j) = j mod m`, so Group_i = {ssd_i, ssd_{m+i}, ...,
//! ssd_{m·r+i}}; consecutive SSDs belong to different groups, which places
//! any two objects of a file in different groups whenever `k ≤ m`. Data
//! migration is intra-group only, preserving that property (§III.D).

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

use crate::ids::{GroupId, ObjectId, OsdId};
use edm_workload::FileId;

/// Placement parameters of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Total number of OSDs (`n`).
    pub osds: u32,
    /// Number of SSD groups (`m`); the paper uses m = 4 (§V.A).
    pub groups: u32,
    /// Objects per file (`k`); the paper uses k = 4 (§V.A).
    pub objects_per_file: u32,
}

impl Placement {
    pub fn new(osds: u32, groups: u32, objects_per_file: u32) -> Self {
        let p = Placement {
            osds,
            groups,
            objects_per_file,
        };
        // edm-audit: allow(panic.expect, "constructor contract: callers pass validated parameters; a bad config is a programming error")
        p.validate().expect("invalid placement parameters");
        p
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.osds == 0 {
            return Err("need at least one OSD".into());
        }
        if self.groups == 0 || self.groups > self.osds {
            return Err("need 1 <= groups <= osds".into());
        }
        if self.objects_per_file == 0 {
            return Err("need at least one object per file".into());
        }
        if self.objects_per_file > self.osds {
            return Err("objects_per_file cannot exceed the OSD count".into());
        }
        if self.objects_per_file > self.groups {
            return Err(
                "objects_per_file must not exceed the group count, or two objects \
                 of one file would share a group and intra-group migration could \
                 break RAID-5 fault independence (§III.D)"
                    .into(),
            );
        }
        Ok(())
    }

    /// The paper's experimental setup: m = 4 groups, k = 4 objects/file.
    pub fn paper(osds: u32) -> Self {
        Placement::new(osds, 4, 4)
    }

    /// Cluster-wide object id of object `index` of `file` (continuous
    /// allocation).
    pub fn object_id(&self, file: FileId, index: u32) -> ObjectId {
        debug_assert!(index < self.objects_per_file);
        ObjectId(file.0 * self.objects_per_file as u64 + index as u64)
    }

    /// Inverse of [`Placement::object_id`].
    pub fn object_owner(&self, object: ObjectId) -> (FileId, u32) {
        (
            FileId(object.0 / self.objects_per_file as u64),
            (object.0 % self.objects_per_file as u64) as u32,
        )
    }

    /// Home OSD of object `index` of `file`.
    ///
    /// When the OSD count divides evenly into the groups (the only
    /// configurations the paper evaluates), this is exactly the paper's
    /// rule: the first object goes to `inode mod n` and the rest to the
    /// following continuous SSDs — which lands each object in a distinct
    /// group because `group(j) = j mod m`.
    ///
    /// When `n mod m ≠ 0` (uneven groups, the §III.D differentiation),
    /// the continuous rule would wrap around the end of the cluster and
    /// could put two objects of one file in the same group, breaking
    /// RAID-5 fault independence. In that case placement goes group-first:
    /// object `i` targets group `(inode + i) mod m` and hashes to a member
    /// within it, preserving both uniformity and the distinct-group
    /// guarantee.
    pub fn home_osd(&self, file: FileId, index: u32) -> OsdId {
        debug_assert!(index < self.objects_per_file);
        if self.osds.is_multiple_of(self.groups) {
            return OsdId(((file.0 + index as u64) % self.osds as u64) as u32);
        }
        let group = ((file.0 + index as u64) % self.groups as u64) as u32;
        // Members of group g are g, g+m, g+2m, ... ; their count is
        // ceil((n - g) / m).
        let members = (self.osds - group).div_ceil(self.groups);
        let slot = (file.0 / self.groups as u64) % members as u64;
        OsdId(group + slot as u32 * self.groups)
    }

    /// Group of an OSD: `j mod m`.
    pub fn group_of(&self, osd: OsdId) -> GroupId {
        GroupId(osd.0 % self.groups)
    }

    /// All OSDs of one group, ascending.
    pub fn group_members(&self, group: GroupId) -> Vec<OsdId> {
        (0..self.osds)
            .filter(|j| j % self.groups == group.0)
            .map(OsdId)
            .collect()
    }

    /// True if `a` and `b` may exchange objects under the intra-group
    /// migration rule.
    pub fn same_group(&self, a: OsdId, b: OsdId) -> bool {
        self.group_of(a) == self.group_of(b)
    }
}

impl Snapshot for Placement {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u32(self.osds);
        w.put_u32(self.groups);
        w.put_u32(self.objects_per_file);
    }
    fn load(r: &mut SnapReader) -> Self {
        let p = Placement {
            osds: r.take_u32(),
            groups: r.take_u32(),
            objects_per_file: r.take_u32(),
        };
        if !r.failed() {
            if let Err(e) = p.validate() {
                r.corrupt(format!("placement: {e}"));
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_is_valid() {
        let p = Placement::paper(20);
        assert_eq!(p.groups, 4);
        assert_eq!(p.objects_per_file, 4);
        p.validate().unwrap();
    }

    #[test]
    fn first_object_at_inode_mod_n() {
        let p = Placement::paper(16);
        assert_eq!(p.home_osd(FileId(5), 0), OsdId(5));
        assert_eq!(p.home_osd(FileId(21), 0), OsdId(5));
        assert_eq!(p.home_osd(FileId(5), 3), OsdId(8));
        // Wraps around the end of the cluster.
        assert_eq!(p.home_osd(FileId(15), 2), OsdId(1));
    }

    #[test]
    fn objects_of_a_file_land_in_distinct_groups() {
        // Divisible and uneven cluster sizes alike (the uneven case uses
        // the group-first fallback documented on `home_osd`).
        for n in [20, 18, 10, 5, 7] {
            let m = 4.min(n);
            let p = Placement::new(n, m, m);
            for inode in 0..200u64 {
                let groups: std::collections::HashSet<GroupId> = (0..p.objects_per_file)
                    .map(|i| p.group_of(p.home_osd(FileId(inode), i)))
                    .collect();
                assert_eq!(
                    groups.len(),
                    p.objects_per_file as usize,
                    "n = {n}, inode = {inode}"
                );
            }
        }
    }

    #[test]
    fn divisible_clusters_use_the_paper_rule_exactly() {
        let p = Placement::paper(20);
        for inode in 0..50u64 {
            for i in 0..4u32 {
                assert_eq!(
                    p.home_osd(FileId(inode), i),
                    OsdId(((inode + i as u64) % 20) as u32)
                );
            }
        }
    }

    #[test]
    fn uneven_clusters_place_objects_on_distinct_osds() {
        let p = Placement::new(18, 4, 4);
        for inode in 0..200u64 {
            let osds: std::collections::HashSet<OsdId> =
                (0..4).map(|i| p.home_osd(FileId(inode), i)).collect();
            assert_eq!(osds.len(), 4, "inode {inode}");
            for o in &osds {
                assert!(o.0 < 18);
            }
        }
    }

    #[test]
    fn group_members_match_paper_formula() {
        // Group_i = {ssd_i, ssd_{m+i}, ..., ssd_{m*r+i}} (§III.A, Fig. 2).
        let p = Placement::paper(20);
        assert_eq!(
            p.group_members(GroupId(1)),
            vec![OsdId(1), OsdId(5), OsdId(9), OsdId(13), OsdId(17)]
        );
        // Every OSD in exactly one group.
        let mut all: Vec<OsdId> = (0..4).flat_map(|g| p.group_members(GroupId(g))).collect();
        all.sort();
        assert_eq!(all, (0..20).map(OsdId).collect::<Vec<_>>());
    }

    #[test]
    fn object_id_roundtrip() {
        let p = Placement::paper(16);
        for inode in [0u64, 1, 999] {
            for idx in 0..4 {
                let oid = p.object_id(FileId(inode), idx);
                assert_eq!(p.object_owner(oid), (FileId(inode), idx));
            }
        }
    }

    #[test]
    fn object_ids_are_continuous() {
        let p = Placement::paper(16);
        assert_eq!(p.object_id(FileId(0), 0), ObjectId(0));
        assert_eq!(p.object_id(FileId(0), 3), ObjectId(3));
        assert_eq!(p.object_id(FileId(1), 0), ObjectId(4));
    }

    #[test]
    fn uneven_group_sizes_are_supported() {
        // §III.D differentiates the number of SSDs per group; 18 OSDs in 4
        // groups gives groups of 5, 5, 4, 4.
        let p = Placement::new(18, 4, 4);
        let sizes: Vec<usize> = (0..4).map(|g| p.group_members(GroupId(g)).len()).collect();
        assert_eq!(sizes, vec![5, 5, 4, 4]);
    }

    #[test]
    fn k_greater_than_m_is_rejected() {
        assert!(Placement {
            osds: 20,
            groups: 2,
            objects_per_file: 4
        }
        .validate()
        .is_err());
    }

    #[test]
    fn same_group_is_an_equivalence_on_examples() {
        let p = Placement::paper(20);
        assert!(p.same_group(OsdId(1), OsdId(5)));
        assert!(!p.same_group(OsdId(1), OsdId(2)));
    }
}

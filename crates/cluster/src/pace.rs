//! Time-source abstraction for the replay engine.
//!
//! The engine's event loop is indifferent to *when* (in wall-clock
//! terms) each virtual-time event is dispatched: correctness lives
//! entirely in the `(time, seq)` total order of the event queue. A
//! [`TimeSource`] decides the pacing. The simulator runs flat out
//! ([`SimTime`] — never waits, never yields), while a live daemon can
//! supply a dilated wall-clock source that holds events back until
//! their scaled deadline and *yields* control between events so the
//! host can service control-plane requests (pause, checkpoint,
//! shutdown) without threading any of that through the engine.
//!
//! The contract that keeps the two modes bit-identical: a `TimeSource`
//! only ever delays or hands back control — it never reorders, drops,
//! or injects events. On [`TimeStep::Yield`] the engine re-enqueues the
//! not-yet-dispatched event under its original `(time, seq)` key, so a
//! later leg pops the exact same sequence the flat-out run would have.

/// Verdict of a [`TimeSource`] for one event about to be dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeStep {
    /// Dispatch the event now.
    Proceed,
    /// Do not dispatch yet: the engine re-enqueues the event unchanged
    /// and returns control to the caller, which is expected to call
    /// back in (after sleeping, or after servicing control traffic).
    Yield,
}

/// Decides when the engine may dispatch the event stamped `virtual_us`.
pub trait TimeSource {
    /// Called once per event pop, *before* virtual time advances.
    /// Returning [`TimeStep::Yield`] leaves the engine state exactly as
    /// if the pop never happened.
    fn wait_until(&mut self, virtual_us: u64) -> TimeStep;
}

/// The simulator's time source: virtual time is decoupled from wall
/// time, so every event is due immediately.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimTime;

impl TimeSource for SimTime {
    fn wait_until(&mut self, _virtual_us: u64) -> TimeStep {
        TimeStep::Proceed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_always_proceeds() {
        let mut t = SimTime;
        for at in [0, 1, u64::MAX] {
            assert_eq!(t.wait_until(at), TimeStep::Proceed);
        }
    }
}

//! One object-based storage device: an SSD plus an object directory and
//! service-side statistics.
//!
//! The paper's OSDs (osc-osd) "receive the I/O requests from both clients
//! and mds, and then handle them serially" (§IV); the simulator models
//! that with one FIFO service queue per OSD (owned by the engine) over the
//! byte-granular [`Ssd`].

use std::collections::HashMap;

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use edm_ssd::{DeviceTime, FtlConfig, FtlError, Geometry, LatencyModel, Ssd};

use crate::extent::{Extent, ExtentAllocator};
use crate::ids::{ObjectId, OsdId};

/// Decay factor of the per-OSD latency EWMA (CMT's load factor).
const EWMA_ALPHA: f64 = 0.05;

/// Errors from object-level OSD operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsdError {
    /// Not enough contiguous logical space for the object.
    NoSpace {
        needed: u64,
        free: u64,
    },
    UnknownObject(ObjectId),
    DuplicateObject(ObjectId),
    /// Access beyond the object's extent.
    OutOfBounds {
        object: ObjectId,
        offset: u64,
        len: u64,
        size: u64,
    },
    Device(String),
}

impl std::fmt::Display for OsdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsdError::NoSpace { needed, free } => {
                write!(f, "no space: need {needed} bytes, {free} free")
            }
            OsdError::UnknownObject(o) => write!(f, "unknown object {o}"),
            OsdError::DuplicateObject(o) => write!(f, "object {o} already stored"),
            OsdError::OutOfBounds {
                object,
                offset,
                len,
                size,
            } => write!(
                f,
                "access [{offset}, {}) beyond {object} of size {size}",
                offset + len
            ),
            OsdError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for OsdError {}

impl From<FtlError> for OsdError {
    fn from(e: FtlError) -> Self {
        OsdError::Device(e.to_string())
    }
}

/// One storage node. `Clone` exists for the group-sharded runner, which
/// hands each shard a full copy of the cluster.
#[derive(Clone)]
pub struct Osd {
    pub id: OsdId,
    ssd: Ssd,
    extents: ExtentAllocator,
    directory: HashMap<ObjectId, Extent>,
    /// EWMA of serviced request latency, µs (CMT's load factor).
    ewma_latency_us: f64,
    /// Host page writes since the last window reset (`Wc` of Eq. 4).
    wc_window_pages: u64,
}

impl Osd {
    /// Builds an OSD with an SSD of the given exported capacity and
    /// default FTL tunables.
    pub fn new(id: OsdId, capacity_bytes: u64, latency: LatencyModel) -> Self {
        Osd::with_ftl(id, capacity_bytes, latency, FtlConfig::default())
    }

    /// Builds an OSD with explicit FTL tunables (GC victim policy, wear
    /// leveling, watermarks).
    pub fn with_ftl(id: OsdId, capacity_bytes: u64, latency: LatencyModel, ftl: FtlConfig) -> Self {
        let geometry = Geometry::for_exported_capacity(capacity_bytes);
        let ssd = Ssd::with_config(geometry, latency, ftl);
        let exported = ssd.geometry().exported_bytes();
        Osd {
            id,
            ssd,
            extents: ExtentAllocator::new(exported),
            directory: HashMap::new(),
            ewma_latency_us: 0.0,
            wc_window_pages: 0,
        }
    }

    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.extents.capacity()
    }

    pub fn free_bytes(&self) -> u64 {
        self.extents.free_bytes()
    }

    /// Utilization by allocated extents (the `u` the wear model sees).
    pub fn utilization(&self) -> f64 {
        self.extents.used_bytes() as f64 / self.extents.capacity() as f64
    }

    pub fn has_object(&self, object: ObjectId) -> bool {
        self.directory.contains_key(&object)
    }

    pub fn object_count(&self) -> usize {
        self.directory.len()
    }

    pub fn object_size(&self, object: ObjectId) -> Option<u64> {
        self.directory.get(&object).map(|e| e.len)
    }

    pub fn ewma_latency_us(&self) -> f64 {
        self.ewma_latency_us
    }

    pub fn wc_window_pages(&self) -> u64 {
        self.wc_window_pages
    }

    pub fn reset_wc_window(&mut self) {
        self.wc_window_pages = 0;
    }

    /// Creates an object of `size` bytes. If `populate`, its pages are
    /// written immediately (pre-creation before replay, §V.A); population
    /// time is returned but setup code typically discards it.
    pub fn create_object(
        &mut self,
        object: ObjectId,
        size: u64,
        populate: bool,
    ) -> Result<DeviceTime, OsdError> {
        if self.directory.contains_key(&object) {
            return Err(OsdError::DuplicateObject(object));
        }
        let extent = self.extents.alloc(size).ok_or(OsdError::NoSpace {
            needed: size,
            free: self.extents.free_bytes(),
        })?;
        self.directory.insert(object, extent);
        if populate && size > 0 {
            let t = self.ssd.write(extent.start, size)?;
            self.wc_window_pages += size.div_ceil(self.ssd.geometry().page_size);
            return Ok(t);
        }
        Ok(DeviceTime::ZERO)
    }

    /// Deletes an object: trims its pages and frees its extent.
    pub fn remove_object(&mut self, object: ObjectId) -> Result<(), OsdError> {
        let extent = self
            .directory
            .remove(&object)
            .ok_or(OsdError::UnknownObject(object))?;
        self.ssd.trim(extent.start, extent.len)?;
        self.extents.free(extent);
        Ok(())
    }

    fn locate(&self, object: ObjectId, offset: u64, len: u64) -> Result<u64, OsdError> {
        let extent = self
            .directory
            .get(&object)
            .ok_or(OsdError::UnknownObject(object))?;
        if offset + len > extent.len {
            return Err(OsdError::OutOfBounds {
                object,
                offset,
                len,
                size: extent.len,
            });
        }
        Ok(extent.start + offset)
    }

    /// Reads `len` bytes at `offset` within an object.
    pub fn read_object(
        &mut self,
        object: ObjectId,
        offset: u64,
        len: u64,
    ) -> Result<DeviceTime, OsdError> {
        let base = self.locate(object, offset, len)?;
        Ok(self.ssd.read(base, len)?)
    }

    /// Writes `len` bytes at `offset` within an object; counts toward the
    /// OSD's `Wc` window.
    pub fn write_object(
        &mut self,
        object: ObjectId,
        offset: u64,
        len: u64,
    ) -> Result<DeviceTime, OsdError> {
        self.write_object_obs(object, offset, len, &mut edm_obs::NoopRecorder)
    }

    /// [`write_object`](Self::write_object) with an observability sink for
    /// the FTL events (GC, erases, wear leveling) the write triggers.
    pub fn write_object_obs(
        &mut self,
        object: ObjectId,
        offset: u64,
        len: u64,
        obs: &mut dyn edm_obs::Recorder,
    ) -> Result<DeviceTime, OsdError> {
        let base = self.locate(object, offset, len)?;
        let t = self.ssd.write_obs(base, len, obs)?;
        self.wc_window_pages += pages_spanned(base, len, self.ssd.geometry().page_size);
        Ok(t)
    }

    /// Reads a whole object (migration source side).
    pub fn read_whole_object(&mut self, object: ObjectId) -> Result<DeviceTime, OsdError> {
        let size = self
            .object_size(object)
            .ok_or(OsdError::UnknownObject(object))?;
        self.read_object(object, 0, size)
    }

    /// Records a serviced request latency into the EWMA load factor.
    pub fn record_service(&mut self, latency_us: u64) {
        if self.ewma_latency_us == 0.0 {
            self.ewma_latency_us = latency_us as f64;
        } else {
            self.ewma_latency_us =
                EWMA_ALPHA * latency_us as f64 + (1.0 - EWMA_ALPHA) * self.ewma_latency_us;
        }
    }

    /// Steady-state warm-up of the underlying device (§IV).
    pub fn warm_up(&mut self) -> Result<(), OsdError> {
        self.ssd.warm_up()?;
        self.wc_window_pages = 0;
        Ok(())
    }

    /// Resets wear counters (between setup and measurement).
    pub fn reset_wear(&mut self) {
        self.ssd.reset_wear();
        self.wc_window_pages = 0;
    }
}

impl Snapshot for Osd {
    /// The directory is serialized sorted by object id for canonical
    /// bytes; its hash-map iteration order is never behavior-relevant.
    fn save(&self, w: &mut SnapWriter) {
        self.id.save(w);
        self.ssd.save(w);
        self.extents.save(w);
        let mut dir: Vec<(ObjectId, Extent)> =
            // edm-audit: allow(det.map_iter, "entries are collected and sorted by object id before serialization")
            self.directory.iter().map(|(&o, &e)| (o, e)).collect();
        dir.sort_by_key(|(o, _)| *o);
        dir.save(w);
        w.put_f64(self.ewma_latency_us);
        w.put_u64(self.wc_window_pages);
    }
    fn load(r: &mut SnapReader) -> Self {
        let id = OsdId::load(r);
        let ssd = Ssd::load(r);
        let extents = ExtentAllocator::load(r);
        let dir = Vec::<(ObjectId, Extent)>::load(r);
        let directory: HashMap<ObjectId, Extent> = dir.iter().copied().collect();
        if directory.len() != dir.len() {
            r.corrupt("object directory has duplicate entries");
        }
        let osd = Osd {
            id,
            ssd,
            extents,
            directory,
            ewma_latency_us: r.take_f64(),
            wc_window_pages: r.take_u64(),
        };
        if !r.failed() {
            // edm-audit: allow(det.map_iter, "summation over values is order-insensitive")
            let dir_bytes: u64 = osd.directory.values().map(|e| e.len).sum();
            if dir_bytes != osd.extents.used_bytes() {
                r.corrupt("object directory disagrees with the extent allocator");
            }
        }
        osd
    }
}

/// Number of pages an access `[offset, offset + len)` touches. Shared
/// with the replay engine's access accounting.
pub(crate) fn pages_spanned(offset: u64, len: u64, page_size: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    (offset + len - 1) / page_size - offset / page_size + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn osd() -> Osd {
        Osd::new(OsdId(0), 8 * 1024 * 1024, LatencyModel::PAPER)
    }

    #[test]
    fn create_write_read_remove_cycle() {
        let mut o = osd();
        o.create_object(ObjectId(1), 64 * 1024, true).unwrap();
        assert!(o.has_object(ObjectId(1)));
        assert_eq!(o.object_size(ObjectId(1)), Some(64 * 1024));
        let t = o.write_object(ObjectId(1), 0, 4096).unwrap();
        assert!(t.as_micros() >= 200);
        let t = o.read_object(ObjectId(1), 4096, 4096).unwrap();
        assert_eq!(t.as_micros(), 25);
        o.remove_object(ObjectId(1)).unwrap();
        assert!(!o.has_object(ObjectId(1)));
        assert_eq!(o.free_bytes(), o.capacity_bytes());
    }

    #[test]
    fn duplicate_and_unknown_objects_rejected() {
        let mut o = osd();
        o.create_object(ObjectId(1), 4096, false).unwrap();
        assert!(matches!(
            o.create_object(ObjectId(1), 4096, false),
            Err(OsdError::DuplicateObject(_))
        ));
        assert!(matches!(
            o.read_object(ObjectId(9), 0, 1),
            Err(OsdError::UnknownObject(_))
        ));
        assert!(matches!(
            o.remove_object(ObjectId(9)),
            Err(OsdError::UnknownObject(_))
        ));
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let mut o = osd();
        o.create_object(ObjectId(1), 8192, false).unwrap();
        assert!(matches!(
            o.write_object(ObjectId(1), 4096, 8192),
            Err(OsdError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn no_space_is_reported() {
        let mut o = osd();
        let too_big = o.capacity_bytes() + 1;
        assert!(matches!(
            o.create_object(ObjectId(1), too_big, false),
            Err(OsdError::NoSpace { .. })
        ));
    }

    #[test]
    fn utilization_tracks_extents() {
        let mut o = osd();
        assert_eq!(o.utilization(), 0.0);
        let half = o.capacity_bytes() / 2;
        o.create_object(ObjectId(1), half, false).unwrap();
        assert!((o.utilization() - 0.5).abs() < 0.01);
    }

    #[test]
    fn wc_window_counts_written_pages() {
        let mut o = osd();
        o.create_object(ObjectId(1), 64 * 1024, false).unwrap();
        o.reset_wc_window();
        o.write_object(ObjectId(1), 0, 8192).unwrap();
        assert_eq!(o.wc_window_pages(), 2);
        // Unaligned 4 KB spanning two pages counts as two.
        o.write_object(ObjectId(1), 2048, 4096).unwrap();
        assert_eq!(o.wc_window_pages(), 4);
        o.reset_wc_window();
        assert_eq!(o.wc_window_pages(), 0);
    }

    #[test]
    fn ewma_latency_moves_toward_samples() {
        let mut o = osd();
        o.record_service(1000);
        assert!((o.ewma_latency_us() - 1000.0).abs() < 1e-9);
        for _ in 0..200 {
            o.record_service(100);
        }
        assert!(o.ewma_latency_us() < 200.0);
        assert!(o.ewma_latency_us() >= 100.0);
    }

    #[test]
    fn pages_spanned_examples() {
        assert_eq!(pages_spanned(0, 0, 4096), 0);
        assert_eq!(pages_spanned(0, 1, 4096), 1);
        assert_eq!(pages_spanned(0, 4096, 4096), 1);
        assert_eq!(pages_spanned(4095, 2, 4096), 2);
        assert_eq!(pages_spanned(100, 8192, 4096), 3);
    }

    #[test]
    fn read_whole_object_costs_all_pages() {
        let mut o = osd();
        o.create_object(ObjectId(1), 16 * 4096, true).unwrap();
        let t = o.read_whole_object(ObjectId(1)).unwrap();
        assert_eq!(t.as_micros(), 16 * 25);
    }
}

//! Group-sharded parallel execution.
//!
//! The replay engine's state decomposes along *placement components*:
//! the connected components of the "shares fate" relation over SSD
//! groups. Two groups are tied together when some file stripes objects
//! across both (degraded reads and RAID-5 rebuilds reach a file's
//! sibling objects in other groups) or when one trace user touches
//! files in both (a user's records run in one client's closed loop).
//! Everything else — OSD queues, FTL state, in-flight ops, moves,
//! rebuilds — is component-local, because parallel-safe policies
//! ([`Migrator::parallel_safe`]) never plan a move across groups, let
//! alone components.
//!
//! The sharded runner exploits that: each component gets its own
//! [`Engine`] (over a full clone of the cluster, mutating only the OSD
//! slots its component owns) and runs on a worker thread until the next
//! wear-monitor tick. At every tick all engines pause and a
//! single-threaded coordinator runs the global tick body — replaying
//! buffered policy accesses, sampling queue depths, firing migration
//! against a merged view, and scheduling the next tick — in fixed
//! component order. Because the engines only interact through that
//! barrier and every end-of-run merge below is order-independent
//! (integer-valued f64 sums far below 2^53, histogram buckets, per-OSD
//! state taken from its unique owner, disjoint remap fragments), the
//! merged [`RunReport`] is bit-identical to the sequential run's under
//! the same [`ClientAffinity::Component`] assignment.

use std::collections::{HashMap, HashSet};

use edm_obs::{AsDynRecorder, Event as ObsEvent, MemoryRecorder, Recorder};
use edm_workload::{FileId, Trace};

use crate::cluster::Cluster;
use crate::ids::{ObjectId, OsdId};
use crate::metrics::{summarize_osds, LatencyHistogram, ResponseSeries, RunReport};
use crate::migrate::{
    validate_plan, AccessEvent, ClusterView, Migrator, MoveAction, ObjectView, OsdView,
};
use crate::placement::Placement;
use crate::sim::{new_engine, ClientAffinity, Engine, MigrationSchedule, Pause, SimOptions};

/// Union-find over group indices, used to build the component map.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    fn unite(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        // Root at the smaller index so numbering is canonical.
        let (lo, hi) = if ra <= rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
    }
}

/// Computes the component id of every SSD group: files unite the groups
/// they stripe across, users unite the groups of every file they touch.
/// Components are numbered in ascending order of their first group.
pub(crate) fn component_map(cluster: &Cluster, trace: &Trace) -> (Vec<usize>, usize) {
    let placement = *cluster.catalog.placement();
    let m = placement.groups as usize;
    let mut uf = UnionFind::new(m);
    let group_of_file = |file: FileId| placement.group_of(placement.home_osd(file, 0)).0 as usize;
    // A file's objects span up to k home groups; degraded reads and
    // rebuilds reach the sibling objects, so all of them must cohabit —
    // for every cataloged file, accessed or not (a failure rebuilds
    // everything on the dead device).
    for meta in cluster.catalog.files() {
        let first = group_of_file(meta.file);
        for i in 1..meta.objects.len() {
            let osd = placement.home_osd(meta.file, i as u32);
            uf.unite(first, placement.group_of(osd).0 as usize);
        }
    }
    // All groups one user touches must cohabit (the user's records run
    // in one client's closed loop). Each file's groups are already
    // united, so its first group stands for all of them.
    let mut user_group: HashMap<u32, usize> = HashMap::new();
    for r in &trace.records {
        let g = group_of_file(r.file);
        match user_group.entry(r.user) {
            std::collections::hash_map::Entry::Occupied(e) => uf.unite(*e.get(), g),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(g);
            }
        }
    }
    let mut comp_of_group = vec![0usize; m];
    let mut root_comp: HashMap<usize, usize> = HashMap::new();
    let mut ncomponents = 0usize;
    for (g, slot) in comp_of_group.iter_mut().enumerate() {
        let root = uf.find(g);
        *slot = *root_comp.entry(root).or_insert_with(|| {
            let c = ncomponents;
            ncomponents += 1;
            c
        });
    }
    (comp_of_group, ncomponents)
}

/// Builds the client scripts for [`ClientAffinity::Component`]: client
/// slots are carved per component (proportional to record counts, at
/// least one per non-empty component), then users round-robin onto their
/// component's slots in order of first appearance. Per-user record order
/// is trace order, exactly as in the default assignment. Both the
/// sequential and sharded paths call this, so the replay they produce is
/// identical.
pub(crate) fn component_scripts(cluster: &Cluster, trace: &Trace, clients: u32) -> Vec<Vec<usize>> {
    assert!(clients > 0, "need at least one client");
    let placement = *cluster.catalog.placement();
    let (comp_of_group, ncomponents) = component_map(cluster, trace);
    let comp_of_file =
        |file: FileId| comp_of_group[placement.group_of(placement.home_osd(file, 0)).0 as usize];

    let mut comp_records = vec![0u64; ncomponents];
    for r in &trace.records {
        comp_records[comp_of_file(r.file)] += 1;
    }
    let nonempty: Vec<usize> = (0..ncomponents).filter(|&c| comp_records[c] > 0).collect();
    let total_clients = (clients as usize).max(nonempty.len());
    if nonempty.is_empty() {
        return vec![Vec::new(); total_clients];
    }

    // Slot allocation: floor of the proportional share, floored at one,
    // then corrected to the exact total — overshoot trimmed from the
    // largest allocations, leftovers handed out by descending record
    // count. Every rule breaks ties on component id, so the split is a
    // pure function of (placement, trace, clients).
    let total_records: u64 = comp_records.iter().sum();
    let mut slots = vec![0usize; ncomponents];
    for &c in &nonempty {
        slots[c] = ((total_clients as u64 * comp_records[c] / total_records) as usize).max(1);
    }
    let mut assigned: usize = slots.iter().sum();
    while assigned > total_clients {
        let c = nonempty
            .iter()
            .copied()
            .filter(|&c| slots[c] > 1)
            .max_by_key(|&c| (slots[c], c))
            // edm-audit: allow(panic.expect, "assigned > total_clients >= nonempty count, so some component holds more than one slot")
            .expect("overshoot implies a multi-slot component");
        slots[c] -= 1;
        assigned -= 1;
    }
    let mut by_weight = nonempty.clone();
    by_weight.sort_by_key(|&c| (std::cmp::Reverse(comp_records[c]), c));
    let mut i = 0;
    while assigned < total_clients {
        slots[by_weight[i % by_weight.len()]] += 1;
        assigned += 1;
        i += 1;
    }

    // Contiguous slot ranges in component order.
    let mut start = vec![0usize; ncomponents];
    let mut acc = 0usize;
    for (c, s) in start.iter_mut().enumerate() {
        *s = acc;
        acc += slots[c];
    }
    debug_assert_eq!(acc, total_clients);

    let mut scripts: Vec<Vec<usize>> = vec![Vec::new(); total_clients];
    let mut user_slot: HashMap<u32, usize> = HashMap::new();
    let mut next_in_comp = vec![0usize; ncomponents];
    for (i, r) in trace.records.iter().enumerate() {
        let slot = *user_slot.entry(r.user).or_insert_with(|| {
            let c = comp_of_file(r.file);
            let s = start[c] + next_in_comp[c];
            next_in_comp[c] = (next_in_comp[c] + 1) % slots[c];
            s
        });
        scripts[slot].push(i);
    }
    scripts
}

/// Why a run will or will not shard. [`crate::sim::run_trace`] applies
/// this silently; `edm-sim` prints it so scripts can grep the outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDecision {
    /// Number of placement components of (cluster, trace).
    pub components: usize,
    /// Worker threads a sharded run would use (0 when inactive).
    pub threads: usize,
    pub active: bool,
    /// `"ok"` when active, otherwise the first failed requirement.
    pub reason: &'static str,
}

impl std::fmt::Display for ShardDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard-plan: components={} threads={} active={} reason={:?}",
            self.components, self.threads, self.active, self.reason
        )
    }
}

/// Evaluates every sharding requirement against a prospective run.
pub fn shard_decision(
    cluster: &Cluster,
    trace: &Trace,
    policy: &dyn Migrator,
    options: &SimOptions,
) -> ShardDecision {
    let (_, components) = component_map(cluster, trace);
    let inactive = |reason: &'static str| ShardDecision {
        components,
        threads: 0,
        active: false,
        reason,
    };
    if options.shards == 0 {
        return inactive("sharding disabled (shards = 0)");
    }
    if options.affinity != ClientAffinity::Component {
        return inactive("requires component client affinity");
    }
    if options.schedule == MigrationSchedule::Midpoint {
        return inactive("midpoint schedule counts completions globally");
    }
    if options.checkpoint.is_some() {
        return inactive("checkpointing requires the sequential loop");
    }
    if !policy.parallel_safe() {
        return inactive("policy is not parallel-safe");
    }
    if !cluster.catalog.remap().is_empty() {
        return inactive("cluster starts with remapped objects");
    }
    if components < 2 {
        return inactive("placement has a single component");
    }
    ShardDecision {
        components,
        threads: (options.shards as usize).min(components),
        active: true,
        reason: "ok",
    }
}

/// The data [`run_sharded`] needs, produced by [`plan_sharding`].
pub(crate) struct ShardPlan {
    comp_of_group: Vec<usize>,
    ncomponents: usize,
    threads: usize,
}

/// Decides whether this run shards; `None` falls back to the sequential
/// loop.
pub(crate) fn plan_sharding(
    cluster: &Cluster,
    trace: &Trace,
    policy: &dyn Migrator,
    options: &SimOptions,
) -> Option<ShardPlan> {
    let decision = shard_decision(cluster, trace, policy, options);
    if !decision.active {
        return None;
    }
    let (comp_of_group, ncomponents) = component_map(cluster, trace);
    Some(ShardPlan {
        comp_of_group,
        ncomponents,
        threads: decision.threads,
    })
}

/// Stand-in policy installed in each shard engine: buffers `on_access`
/// callbacks for barrier-time replay into the real policy, and never
/// plans anything itself (migration fires globally at the barrier).
struct AccessBuffer {
    events: Vec<AccessEvent>,
    /// Mirrors the real policy so the engine parks requests identically.
    blocking: bool,
}

impl Migrator for AccessBuffer {
    fn name(&self) -> &str {
        "shard-access-buffer"
    }

    fn on_access(&mut self, event: AccessEvent) {
        self.events.push(event);
    }

    fn plan(&mut self, _view: &ClusterView) -> Vec<MoveAction> {
        Vec::new()
    }

    fn blocking_moves(&self) -> bool {
        self.blocking
    }
}

type ShardEngine<'a> = Engine<'a, AccessBuffer, MemoryRecorder>;

/// Runs every engine to its next pause, distributing them over `threads`
/// scoped worker threads (engine *i* on thread *i* mod `threads`). With
/// one thread this degrades to a plain loop — same results either way,
/// which is what the shard-digest fuzz oracle leans on.
fn run_all(engines: &mut [ShardEngine<'_>], threads: usize) {
    if threads <= 1 || engines.len() <= 1 {
        for engine in engines.iter_mut() {
            engine.run_until_pause();
        }
        return;
    }
    let mut bins: Vec<Vec<&mut ShardEngine<'_>>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, engine) in engines.iter_mut().enumerate() {
        bins[i % threads].push(engine);
    }
    std::thread::scope(|s| {
        for bin in bins {
            // edm-audit: allow(det.thread_order, "workers mutate disjoint `&mut` engine slots; results are read back from the engines slice in component index order after the scope joins, so no scheduler-ordered aggregation exists")
            s.spawn(move || {
                for engine in bin {
                    engine.run_until_pause();
                }
            });
        }
    });
}

/// Builds the policy-facing view from the shards — field-for-field the
/// construction of [`Cluster::view`], reading every OSD slot and every
/// object's location from the engine that owns its component.
fn merged_view(
    engines: &[ShardEngine<'_>],
    now_us: u64,
    plan: &ShardPlan,
    placement: &Placement,
) -> ClusterView {
    let comp_of_osd = |osd: OsdId| plan.comp_of_group[placement.group_of(osd).0 as usize];
    // edm-audit: allow(panic.slice_index, "run_sharded only runs with >= 2 components, so engines is never empty")
    let first = &engines[0].cluster;
    // edm-audit: allow(panic.slice_index, "ClusterConfig validation guarantees at least one OSD")
    let page_size = first.osds[0].ssd().geometry().page_size;
    // edm-audit: allow(panic.slice_index, "ClusterConfig validation guarantees at least one OSD")
    let pages_per_block = first.osds[0].ssd().geometry().pages_per_block;
    let osds = (0..first.config.osds)
        .map(|i| {
            let o = &engines[comp_of_osd(OsdId(i))].cluster.osds[i as usize];
            OsdView {
                osd: o.id,
                group: placement.group_of(o.id),
                wc_pages: o.wc_window_pages(),
                utilization: o.utilization(),
                measured_erases: o.ssd().wear().block_erases,
                ewma_latency_us: o.ewma_latency_us(),
                free_bytes: o.free_bytes(),
                capacity_bytes: o.capacity_bytes(),
            }
        })
        .collect();
    let mut objects = Vec::with_capacity(first.catalog.total_objects() as usize);
    for meta in first.catalog.files() {
        for &obj in &meta.objects {
            // Moves stay inside a component, so the owner of the object's
            // *home* OSD holds its authoritative location forever.
            let owner = &engines[comp_of_osd(first.catalog.home_of(obj))]
                .cluster
                .catalog;
            objects.push(ObjectView {
                object: obj,
                osd: owner.locate(obj),
                size_bytes: meta.object_size,
                remapped: owner.remap().contains(obj),
            });
        }
    }
    ClusterView {
        now_us,
        page_size,
        pages_per_block,
        osds,
        objects,
    }
}

/// The barrier-time mirror of the engine's `fire_migration`: plans
/// against the merged view, applies the sequential acceptance rules over
/// global projected free space, routes each accepted move to the
/// source's owner engine, and kicks the per-source mover streams in
/// ascending OSD order.
fn fire_migration_global<P: Migrator + ?Sized, R: Recorder + AsDynRecorder + ?Sized>(
    engines: &mut [ShardEngine<'_>],
    policy: &mut P,
    obs: &mut R,
    plan: &ShardPlan,
    placement: &Placement,
    migrations_triggered: &mut u64,
) {
    let comp_of_osd = |osd: OsdId| plan.comp_of_group[placement.group_of(osd).0 as usize];
    // edm-audit: allow(panic.slice_index, "run_sharded only runs with >= 2 components, so engines is never empty")
    let now = engines[0].now;
    let view = merged_view(engines, now, plan, placement);
    obs.counter("sim.migration_evaluations", 1);
    let actions = policy.plan_obs(&view, obs.as_dyn_mut());
    if actions.is_empty() {
        return;
    }
    validate_plan(&actions, &view, false, |o| placement.group_of(o))
        // edm-audit: allow(panic.panic, "plans are validated before acceptance; an invalid plan is a policy bug worth aborting on")
        .unwrap_or_else(|e| panic!("policy {} produced invalid plan: {e}", policy.name()));

    // edm-audit: allow(panic.slice_index, "run_sharded only runs with >= 2 components, so engines is never empty")
    let osd_count = engines[0].cluster.config.osds;
    let mut projected_free: Vec<i64> = (0..osd_count)
        .map(|o| engines[comp_of_osd(OsdId(o))].cluster.osds[o as usize].free_bytes() as i64)
        .collect();
    // edm-audit: allow(panic.slice_index, "ClusterConfig validation guarantees at least one OSD")
    let reserve = (engines[comp_of_osd(OsdId(0))].cluster.osds[0].capacity_bytes() as f64
        * engines[0].cluster.config.dest_free_reserve) as i64; // edm-audit: allow(panic.slice_index, "run_sharded only runs with >= 2 components, so engines is never empty")
    let pending: HashSet<ObjectId> = engines
        .iter()
        .flat_map(|e| {
            e.move_routes
                .keys()
                .copied()
                .chain(e.move_queues.iter().flatten().map(|a| a.object))
        })
        .collect();
    let mut accepted = 0u64;
    for action in actions {
        let owner = comp_of_osd(action.source);
        assert_eq!(
            owner,
            comp_of_osd(action.dest),
            "parallel-safe policy {} planned a cross-component move {} -> {}",
            policy.name(),
            action.source,
            action.dest
        );
        if pending.contains(&action.object) {
            engines[owner].failed_moves += 1;
            continue;
        }
        if engines[owner].failed[action.source.0 as usize]
            || engines[owner].failed[action.dest.0 as usize]
        {
            engines[owner].failed_moves += 1;
            continue;
        }
        let size = engines[owner]
            .cluster
            .object_size(action.object)
            // edm-audit: allow(panic.expect, "plan validation already resolved every object against the catalog")
            .expect("plan references unknown object") as i64;
        let dest_free = &mut projected_free[action.dest.0 as usize];
        if *dest_free - size < reserve {
            engines[owner].failed_moves += 1;
            continue;
        }
        *dest_free -= size;
        projected_free[action.source.0 as usize] += size;
        engines[owner].move_queues[action.source.0 as usize].push_back(action);
        accepted += 1;
    }
    if accepted > 0 {
        *migrations_triggered += 1;
    }
    for source in 0..osd_count {
        let owner = &mut engines[comp_of_osd(OsdId(source))];
        if owner
            .move_routes
            .values()
            .all(|a| a.source != OsdId(source))
        {
            owner.start_next_move(OsdId(source));
        }
    }
}

/// Runs `trace` with one engine per placement component, synchronized at
/// wear-monitor ticks, and merges the shards back into one report and
/// cluster — bit-identical to the sequential run under the same options.
pub(crate) fn run_sharded<P: Migrator + ?Sized, R: Recorder + AsDynRecorder + ?Sized>(
    cluster: Cluster,
    trace: &Trace,
    policy: &mut P,
    options: SimOptions,
    obs: &mut R,
    plan: ShardPlan,
) -> (RunReport, Cluster) {
    let placement = *cluster.catalog.placement();
    let comp_of_osd = |osd: OsdId| plan.comp_of_group[placement.group_of(osd).0 as usize];
    let comp_of_file = |file: FileId| {
        plan.comp_of_group[placement.group_of(placement.home_osd(file, 0)).0 as usize]
    };
    let n = plan.ncomponents;
    let osd_count = cluster.config.osds as usize;
    let wear_tick_us = cluster.config.wear_tick_us;
    let window_us = cluster.config.response_window_us;
    let total_records = trace.records.len() as u64;

    let mut bufs: Vec<AccessBuffer> = (0..n)
        .map(|_| AccessBuffer {
            events: Vec::new(),
            blocking: policy.blocking_moves(),
        })
        .collect();
    let mut recs: Vec<MemoryRecorder> = (0..n).map(|_| MemoryRecorder::new(obs.level())).collect();
    let worlds = vec![cluster; n];
    let mut engines: Vec<ShardEngine<'_>> = worlds
        .into_iter()
        .zip(bufs.iter_mut().zip(recs.iter_mut()))
        .map(|(world, (buf, rec))| new_engine(world, trace, buf, options.clone(), rec))
        .collect();

    // Each engine keeps only the scripts of its own component (the slot
    // layout is identical across engines — `new_engine` built them all
    // from the same trace) and owns only its component's injected
    // failures.
    for (c, engine) in engines.iter_mut().enumerate() {
        for script in engine.scripts.iter_mut() {
            let mine = script
                .first()
                .is_some_and(|&i| comp_of_file(trace.records[i].file) == c);
            if !mine {
                script.clear();
            }
        }
        engine.seed_clients();
        if total_records > 0 {
            engine.seed_tick(wear_tick_us);
        }
        engine.seed_failures(|osd| comp_of_osd(osd) == c);
    }

    // Tick-synchronized rounds. Every engine holds exactly one pending
    // tick marker per round (seeded above, re-seeded at each barrier
    // while the replay is unfinished), so `run_all` leaves them all
    // paused at the same tick — or all done, once the markers stop.
    let mut migrations_triggered = 0u64;
    loop {
        run_all(&mut engines, plan.threads);
        if engines.iter().all(|e| e.paused == Pause::Done) {
            break;
        }
        assert!(
            engines.iter().all(|e| e.paused == Pause::Tick),
            "shard engines desynchronized at a barrier"
        );
        // edm-audit: allow(panic.slice_index, "run_sharded only runs with >= 2 components, so engines is never empty")
        let now = engines[0].now;
        assert!(
            engines.iter().all(|e| e.now == now),
            "shard engines paused at different ticks"
        );

        // The tick body, in the sequential engine's order. Buffered
        // accesses replay shard-ascending first: they all precede the
        // tick in virtual time, and a parallel-safe policy's per-access
        // updates commute across components, so its state now equals the
        // sequential interleaving's.
        obs.set_now(now);
        for engine in engines.iter_mut() {
            for event in engine.policy.events.drain(..) {
                policy.on_access(event);
            }
        }
        obs.counter("sim.ticks", 1);
        if obs.events_on() {
            for o in 0..osd_count {
                let owner = &engines[comp_of_osd(OsdId(o as u32))];
                obs.event(ObsEvent::QueueDepth {
                    osd: o as u32,
                    depth: owner.queues[o].len() as u64 + owner.current[o].is_some() as u64,
                });
            }
        }
        policy.on_tick(now);
        if options.schedule == MigrationSchedule::EveryTick {
            fire_migration_global(
                &mut engines,
                policy,
                obs,
                &plan,
                &placement,
                &mut migrations_triggered,
            );
            for engine in engines.iter_mut() {
                // Foreign slots are reset too; they are stale clones that
                // nothing ever reads.
                for osd in &mut engine.cluster.osds {
                    osd.reset_wc_window();
                }
            }
            policy.on_window_reset();
        }
        let completed: u64 = engines.iter().map(|e| e.completed_ops).sum();
        if completed < total_records {
            for engine in engines.iter_mut() {
                engine.seed_tick(now + wear_tick_us);
            }
        }
    }
    // Accesses buffered after the last tick (the final drain to Done)
    // never see another plan, but the policy's end state should match
    // the sequential run's for anyone who inspects it afterwards.
    for engine in engines.iter_mut() {
        for event in engine.policy.events.drain(..) {
            policy.on_access(event);
        }
    }

    // The invariants the sequential `finalize` would check, globally.
    let completed: u64 = engines.iter().map(|e| e.completed_ops).sum();
    assert_eq!(
        completed, total_records,
        "replay finished with unserved records"
    );
    assert!(
        engines.iter().all(|e| e.moving.is_empty()),
        "moves left in flight"
    );

    // Fold the shard recorders into the parent. Counters, gauges, and
    // histograms are additive/idempotent merges in deterministic name
    // order. Journal entries are re-emitted shard by shard in component
    // order, preserving each shard's insertion order and component tag
    // (every shard engine tags its own entries — they are all its
    // component's work). The parent's own barrier-time entries were
    // journaled live and untagged, exactly as the sequential engine
    // journals its tick bodies, so `write_jsonl`'s canonical
    // (t_us, component) sort serializes the sharded journal
    // byte-identically to the sequential one — the `journal_identity`
    // fuzz oracle enforces this.
    for engine in engines.iter() {
        for (name, value) in engine.obs.counters() {
            obs.counter(name, *value);
        }
        for (name, value) in engine.obs.gauges() {
            obs.gauge(name, *value);
        }
        for (name, hist) in engine.obs.histograms() {
            obs.merge_histogram(name, hist);
        }
    }
    if obs.events_on() {
        for engine in engines.iter() {
            for entry in engine.obs.journal() {
                obs.set_now(entry.t_us);
                obs.set_device(entry.device);
                obs.set_component(entry.component);
                obs.event(entry.event.clone());
            }
        }
        obs.set_device(None);
        obs.set_component(None);
    }

    // Merge the shards: order-independent sums for the scalar tallies
    // (integer-valued f64s stay far below 2^53, so addition is exact),
    // per-OSD state from each slot's unique owner.
    let mut duration_us = 0u64;
    let mut response_sum = 0.0f64;
    let mut degraded_ops = 0u64;
    let mut lost_ops = 0u64;
    let mut rebuilt_objects = 0u64;
    let mut moved_objects = 0u64;
    let mut responses = ResponseSeries::new(window_us);
    let mut response_hist = LatencyHistogram::new();
    let mut busy_us = vec![0u64; osd_count];
    let mut peak_queue_depth = vec![0u64; osd_count];
    let mut failed = vec![false; osd_count];
    let mut worlds: Vec<Cluster> = Vec::with_capacity(n);
    for (c, engine) in engines.into_iter().enumerate() {
        duration_us = duration_us.max(engine.last_completion_us);
        response_sum += engine.response_sum;
        degraded_ops += engine.degraded_ops;
        lost_ops += engine.lost_ops;
        rebuilt_objects += engine.rebuilt_objects;
        moved_objects += engine.moved_objects;
        responses.merge_from(&engine.responses);
        response_hist.merge_from(&engine.response_hist);
        for o in 0..osd_count {
            if comp_of_osd(OsdId(o as u32)) == c {
                busy_us[o] = engine.busy_us[o];
                peak_queue_depth[o] = engine.peak_queue_depth[o];
                failed[o] = engine.failed[o];
            }
        }
        worlds.push(engine.cluster);
    }
    let mut cluster = worlds.remove(0);
    for (idx, other) in worlds.into_iter().enumerate() {
        let c = idx + 1;
        for (o, osd) in other.osds.into_iter().enumerate() {
            if comp_of_osd(OsdId(o as u32)) == c {
                cluster.osds[o] = osd;
            }
        }
        cluster
            .catalog
            .remap_mut()
            .merge_from(other.catalog.remap());
    }

    let mut per_osd = summarize_osds(cluster.osds.iter().map(|o| {
        (
            o.id.0,
            o.ssd().wear(),
            o.utilization(),
            busy_us[o.id.0 as usize],
        )
    }));
    for (summary, &peak) in per_osd.iter_mut().zip(&peak_queue_depth) {
        summary.peak_queue_depth = peak;
    }
    let report = RunReport {
        trace: trace.name.clone(),
        policy: policy.name().to_string(),
        osds: cluster.config.osds,
        completed_ops: completed,
        duration_us,
        mean_response_us: if completed > 0 {
            response_sum / completed as f64
        } else {
            0.0
        },
        response_percentiles_us: (
            response_hist.quantile(0.50),
            response_hist.quantile(0.95),
            response_hist.quantile(0.99),
        ),
        response_windows: responses.windows(),
        per_osd,
        moved_objects,
        remap_entries: cluster.catalog.remap().len() as u64,
        total_objects: cluster.catalog.total_objects(),
        migrations_triggered,
        failed_osds: (0..cluster.config.osds)
            .filter(|&i| failed[i as usize])
            .collect(),
        degraded_ops,
        lost_ops,
        rebuilt_objects,
    };
    (report, cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::migrate::NoMigration;
    use crate::sim::{run_trace_obs_keep, FailureSpec};
    use edm_obs::NoopRecorder;
    use edm_snap::{SnapWriter, Snapshot};
    use edm_workload::{FileOp, TraceRecord};

    /// Canonical byte encoding of a cluster — the strongest equality the
    /// repo has (every device's FTL state is serialized exactly).
    fn cluster_bytes(c: &Cluster) -> Vec<u8> {
        let mut w = SnapWriter::new();
        c.save(&mut w);
        w.into_bytes()
    }

    /// 8 OSDs in 4 groups, two objects per file: file *f*'s objects land
    /// on OSDs `f % 8` and `(f+1) % 8`, i.e. groups `f % 4` and
    /// `(f+1) % 4`. Using only file ids ≡ 0 and ≡ 2 (mod 4) ties groups
    /// {0, 1} and {2, 3} into two disjoint components. The short wear
    /// tick forces many barriers inside a short replay.
    fn two_component_config() -> ClusterConfig {
        ClusterConfig {
            osds: 8,
            groups: 4,
            objects_per_file: 2,
            skip_warm_up: true,
            clients: Some(4),
            wear_tick_us: 1_000,
            ..ClusterConfig::paper(8)
        }
    }

    /// Users 0/2 touch component {0,1} files, users 1/3 component {2,3}
    /// files → two components.
    fn two_component_trace() -> Trace {
        let mut t = Trace::new("two-comp");
        for f in (0u64..32).step_by(2) {
            t.file_sizes.insert(FileId(f), 1 << 20);
        }
        let mut now = 0u64;
        for i in 0u64..240 {
            let user = (i % 4) as u32;
            let file = FileId(2 * (user as u64 % 2) + 4 * ((i / 4) % 8));
            let op = if i % 3 == 0 {
                FileOp::Read {
                    offset: (i % 7) * 4096,
                    len: 8192,
                }
            } else {
                FileOp::Write {
                    offset: (i % 11) * 4096,
                    len: 16384,
                }
            };
            t.records.push(TraceRecord {
                time_us: now,
                user,
                file,
                op,
            });
            now += 100;
        }
        t
    }

    /// Deterministic test mover: each tick, moves the first object of
    /// the most-written OSD to its least-written same-group peer.
    /// Intra-group, hence intra-component, hence parallel-safe.
    struct GroupMover;

    impl Migrator for GroupMover {
        fn name(&self) -> &str {
            "GroupMover"
        }
        fn plan(&mut self, view: &ClusterView) -> Vec<MoveAction> {
            let mut osds = view.osds.clone();
            osds.sort_by_key(|o| (std::cmp::Reverse(o.wc_pages), o.osd));
            let source = osds[0].clone();
            let Some(dest) = osds
                .iter()
                .rev()
                .find(|o| o.group == source.group && o.osd != source.osd)
            else {
                return Vec::new();
            };
            let Some(obj) = view.objects_on(source.osd).next() else {
                return Vec::new();
            };
            vec![MoveAction {
                object: obj.object,
                source: source.osd,
                dest: dest.osd,
            }]
        }
        fn parallel_safe(&self) -> bool {
            true // stateless; plans only intra-group moves
        }
    }

    fn options(shards: u32) -> SimOptions {
        SimOptions {
            schedule: MigrationSchedule::EveryTick,
            shards,
            affinity: ClientAffinity::Component,
            ..SimOptions::default()
        }
    }

    fn run(
        shards: u32,
        policy: &mut dyn Migrator,
        failures: Vec<FailureSpec>,
    ) -> (RunReport, Cluster) {
        let trace = two_component_trace();
        let cluster = Cluster::build(two_component_config(), &trace).unwrap();
        let mut opts = options(shards);
        opts.failures = failures;
        run_trace_obs_keep(cluster, &trace, policy, opts, &mut NoopRecorder)
    }

    #[test]
    fn component_map_splits_disjoint_groups() {
        let trace = two_component_trace();
        let cluster = Cluster::build(two_component_config(), &trace).unwrap();
        let (comp_of_group, n) = component_map(&cluster, &trace);
        assert_eq!(n, 2);
        assert_eq!(comp_of_group, vec![0, 0, 1, 1]);
    }

    #[test]
    fn component_scripts_cover_every_record_once() {
        let trace = two_component_trace();
        let cluster = Cluster::build(two_component_config(), &trace).unwrap();
        let scripts = component_scripts(&cluster, &trace, 4);
        assert_eq!(scripts.len(), 4);
        let mut seen = vec![false; trace.records.len()];
        for s in &scripts {
            for w in s.windows(2) {
                assert!(w[0] < w[1], "per-client order must be trace order");
            }
            for &i in s {
                assert!(!seen[i], "record {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "record left unassigned");
        // Each script stays inside one component.
        let placement = *cluster.catalog.placement();
        let (comp_of_group, _) = component_map(&cluster, &trace);
        for s in scripts.iter().filter(|s| !s.is_empty()) {
            let comp = |i: usize| {
                comp_of_group[placement
                    .group_of(placement.home_osd(trace.records[i].file, 0))
                    .0 as usize]
            };
            let first = comp(s[0]);
            assert!(s.iter().all(|&i| comp(i) == first));
        }
    }

    #[test]
    fn component_scripts_raise_client_count_when_needed() {
        let trace = two_component_trace();
        let cluster = Cluster::build(two_component_config(), &trace).unwrap();
        // Fewer requested clients than components: one slot each.
        let scripts = component_scripts(&cluster, &trace, 1);
        assert_eq!(scripts.len(), 2);
        assert!(scripts.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn shard_decision_explains_fallbacks() {
        let trace = two_component_trace();
        let cluster = Cluster::build(two_component_config(), &trace).unwrap();
        let active = shard_decision(&cluster, &trace, &NoMigration, &options(2));
        assert!(active.active);
        assert_eq!(active.components, 2);
        assert_eq!(active.threads, 2);

        let off = shard_decision(&cluster, &trace, &NoMigration, &options(0));
        assert!(!off.active);
        assert!(off.reason.contains("disabled"));

        let mut user = options(2);
        user.affinity = ClientAffinity::User;
        assert!(!shard_decision(&cluster, &trace, &NoMigration, &user).active);

        let mut midpoint = options(2);
        midpoint.schedule = MigrationSchedule::Midpoint;
        assert!(!shard_decision(&cluster, &trace, &NoMigration, &midpoint).active);

        // CMT-style policies are not parallel-safe.
        struct Unsafe;
        impl Migrator for Unsafe {
            fn name(&self) -> &str {
                "Unsafe"
            }
            fn plan(&mut self, _view: &ClusterView) -> Vec<MoveAction> {
                Vec::new()
            }
        }
        let not_safe = shard_decision(&cluster, &trace, &Unsafe, &options(2));
        assert!(!not_safe.active);
        assert!(not_safe.reason.contains("parallel-safe"));

        // One-component worlds (the paper's k = m = 4 layout) never shard.
        let one = ClusterConfig::test_small();
        let t1 = {
            let mut t = Trace::new("one");
            t.file_sizes.insert(FileId(0), 1 << 20);
            t.records.push(TraceRecord {
                time_us: 0,
                user: 0,
                file: FileId(0),
                op: FileOp::Read {
                    offset: 0,
                    len: 4096,
                },
            });
            t
        };
        let c1 = Cluster::build(one, &t1).unwrap();
        let d1 = shard_decision(&c1, &t1, &NoMigration, &options(2));
        assert!(!d1.active);
        assert_eq!(d1.components, 1);
    }

    #[test]
    fn sharded_baseline_matches_sequential_bit_for_bit() {
        let (seq_report, seq_cluster) = run(0, &mut NoMigration, Vec::new());
        let (par_report, par_cluster) = run(2, &mut NoMigration, Vec::new());
        assert_eq!(format!("{seq_report:?}"), format!("{par_report:?}"));
        assert_eq!(cluster_bytes(&seq_cluster), cluster_bytes(&par_cluster));
    }

    #[test]
    fn sharded_migration_matches_sequential_bit_for_bit() {
        let (seq_report, seq_cluster) = run(0, &mut GroupMover, Vec::new());
        let (par_report, par_cluster) = run(2, &mut GroupMover, Vec::new());
        assert!(seq_report.moved_objects > 0, "mover must actually move");
        assert_eq!(format!("{seq_report:?}"), format!("{par_report:?}"));
        assert_eq!(cluster_bytes(&seq_cluster), cluster_bytes(&par_cluster));
        let seq_remap: Vec<_> = seq_cluster.catalog.remap().iter().collect();
        let par_remap: Vec<_> = par_cluster.catalog.remap().iter().collect();
        assert_eq!(seq_remap, par_remap);
    }

    #[test]
    fn sharded_failure_matches_sequential() {
        let failures = vec![FailureSpec {
            at_us: 3_000,
            osd: OsdId(2),
            rebuild: true,
        }];
        let (seq_report, seq_cluster) = run(0, &mut NoMigration, failures.clone());
        let (par_report, par_cluster) = run(2, &mut NoMigration, failures);
        assert_eq!(seq_report.failed_osds, vec![2]);
        assert_eq!(format!("{seq_report:?}"), format!("{par_report:?}"));
        assert_eq!(cluster_bytes(&seq_cluster), cluster_bytes(&par_cluster));
    }

    /// The serialized journal of a sharded run must be byte-identical to
    /// the sequential run's: shard engines tag entries with their
    /// component, the coordinator journals untagged, and `write_jsonl`'s
    /// canonical (t_us, component) sort reconstructs the interleaving.
    fn journal_bytes(shards: u32, failures: Vec<FailureSpec>) -> String {
        let trace = two_component_trace();
        let cluster = Cluster::build(two_component_config(), &trace).unwrap();
        let mut opts = options(shards);
        opts.failures = failures;
        let mut rec = edm_obs::MemoryRecorder::new(edm_obs::ObsLevel::Events);
        run_trace_obs_keep(cluster, &trace, &mut GroupMover, opts, &mut rec);
        let mut out = Vec::new();
        rec.write_jsonl(&mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn sharded_journal_matches_sequential_byte_for_byte() {
        let seq = journal_bytes(0, Vec::new());
        let par = journal_bytes(2, Vec::new());
        assert!(seq.contains("\"kind\":\"migration_start\""));
        assert_eq!(seq, par);
    }

    #[test]
    fn sharded_failure_journal_matches_sequential_byte_for_byte() {
        let failures = vec![FailureSpec {
            at_us: 3_000,
            osd: OsdId(2),
            rebuild: true,
        }];
        let seq = journal_bytes(0, failures.clone());
        let par = journal_bytes(2, failures);
        assert!(seq.contains("\"kind\":\"device_failed\""));
        assert_eq!(seq, par);
    }

    #[test]
    fn single_thread_sharding_matches_multi_thread() {
        let (one_report, _) = run(1, &mut GroupMover, Vec::new());
        let (two_report, _) = run(2, &mut GroupMover, Vec::new());
        assert_eq!(format!("{one_report:?}"), format!("{two_report:?}"));
    }
}

#![forbid(unsafe_code)]
//! Shared helpers for the Criterion bench suite.
//!
//! Every figure bench does two things:
//!
//! 1. **Regenerates its paper artifact** once at startup — the same
//!    rendered rows/series `edm-exp` prints — at a scale controlled by
//!    the `EDM_BENCH_SCALE` environment variable (default 0.01, i.e. 1 %
//!    of the Table 1 op counts; pass 1.0 for the full-size workloads).
//! 2. **Benchmarks** a representative unit of that experiment with
//!    Criterion so regressions in simulation or policy cost are tracked.

use edm_cluster::MigrationSchedule;
use edm_harness::runner::RunConfig;

/// Scale at which the artifact is regenerated at bench startup.
pub fn artifact_scale() -> f64 {
    std::env::var("EDM_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0 && *s <= 1.0)
        .unwrap_or(0.01)
}

/// Run configuration for the artifact regeneration.
pub fn artifact_config() -> RunConfig {
    RunConfig {
        scale: artifact_scale(),
        schedule: MigrationSchedule::Midpoint,
        response_window_us: None,
        jobs: None,
    }
}

/// Tiny configuration for the timed Criterion iterations.
pub fn timed_config() -> RunConfig {
    RunConfig {
        scale: 0.002,
        schedule: MigrationSchedule::Midpoint,
        response_window_us: None,
        jobs: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_sane() {
        assert!(artifact_scale() > 0.0 && artifact_scale() <= 1.0);
        assert!(timed_config().scale > 0.0);
    }
}

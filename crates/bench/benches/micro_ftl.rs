//! Micro-benchmarks of the flash substrate: page writes, GC pressure,
//! and the steady-state warm-up.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edm_ssd::{FtlConfig, Geometry, LatencyModel, PageLevelFtl, Ssd};
use std::hint::black_box;

fn small_geometry() -> Geometry {
    Geometry {
        page_size: 4096,
        pages_per_block: 32,
        blocks: 1024,
        over_provision_ppt: 80,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_ftl");

    let n_writes = 100_000u64;
    g.throughput(Throughput::Elements(n_writes));
    g.bench_function("sequential_writes/100k", |b| {
        b.iter(|| {
            let mut ftl = PageLevelFtl::new(small_geometry(), FtlConfig::default());
            let lat = LatencyModel::INSTANT;
            let exported = ftl.geometry().exported_pages();
            for i in 0..n_writes {
                ftl.write(black_box(i % exported), &lat).unwrap();
            }
            ftl.stats().block_erases
        })
    });

    g.bench_function("hot_overwrites_with_gc/100k", |b| {
        b.iter(|| {
            let mut ftl = PageLevelFtl::new(small_geometry(), FtlConfig::default());
            let lat = LatencyModel::INSTANT;
            let exported = ftl.geometry().exported_pages();
            let live = exported * 7 / 10;
            for lpn in 0..live {
                ftl.write(lpn, &lat).unwrap();
            }
            let mut x = 0x9E3779B97F4A7C15u64;
            for _ in 0..n_writes {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ftl.write((x >> 11) % live, &lat).unwrap();
            }
            ftl.stats().block_erases
        })
    });

    g.throughput(Throughput::Elements(n_writes));
    g.bench_function("sequential_span_writes/100k", |b| {
        b.iter(|| {
            let mut ftl = PageLevelFtl::new(small_geometry(), FtlConfig::default());
            let lat = LatencyModel::INSTANT;
            let exported = ftl.geometry().exported_pages();
            let span = 32u64;
            let mut written = 0u64;
            while written < n_writes {
                let start = written % (exported - span);
                ftl.write_span(black_box(start), span, &lat).unwrap();
                written += span;
            }
            ftl.stats().block_erases
        })
    });

    g.bench_function("hot_span_overwrites_with_gc/100k", |b| {
        b.iter(|| {
            let mut ftl = PageLevelFtl::new(small_geometry(), FtlConfig::default());
            let lat = LatencyModel::INSTANT;
            let exported = ftl.geometry().exported_pages();
            let live = exported * 7 / 10;
            let span = 32u64;
            let extents = live / span;
            for e in 0..extents {
                ftl.write_span(e * span, span, &lat).unwrap();
            }
            let mut x = 0x9E3779B97F4A7C15u64;
            let mut written = 0u64;
            while written < n_writes {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let e = (x >> 11) % extents;
                ftl.write_span(black_box(e * span), span, &lat).unwrap();
                written += span;
            }
            ftl.stats().block_erases
        })
    });

    g.throughput(Throughput::Elements(1));
    g.bench_function("warm_up/64MB", |b| {
        b.iter(|| {
            let mut ssd = Ssd::new(small_geometry(), LatencyModel::INSTANT);
            ssd.write(0, 32 * 1024 * 1024).unwrap();
            ssd.warm_up().unwrap();
            ssd.utilization()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 1 — per-SSD erase counts and write pages under Baseline:
//! regenerates both panels and benchmarks a baseline replay.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_bench::{artifact_config, timed_config};
use edm_harness::experiments::fig1;
use edm_harness::runner::{run_cell, Cell};

fn bench(c: &mut Criterion) {
    println!("{}", fig1::render(&fig1::run(&artifact_config(), 8)));

    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    let cfg = timed_config();
    g.bench_function("baseline_replay/home02@0.2%/8osd", |b| {
        b.iter(|| run_cell(&Cell::new("home02", "Baseline", 8), &cfg))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 6 — cluster-wide aggregate erase counts: regenerates the table
//! (same sweep as Fig. 5) and benchmarks the wear-accounting replay under
//! the two EDM policies.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_bench::{artifact_config, timed_config};
use edm_harness::experiments::fig56;
use edm_harness::runner::{run_cell, Cell};

fn bench(c: &mut Criterion) {
    let cfg = artifact_config();
    let m = if std::env::var("EDM_BENCH_FULL").is_ok() {
        fig56::run_paper(&cfg)
    } else {
        fig56::run(&cfg, &[16], &["home02", "deasna", "lair62"])
    };
    println!("{}", fig56::render_fig6(&m));

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    let cfg = timed_config();
    for policy in ["EDM-HDF", "EDM-CDF"] {
        g.bench_function(format!("cell/lair62@0.2%/{policy}"), |b| {
            b.iter(|| run_cell(&Cell::new("lair62", policy, 8), &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 1 — workload characteristics: regenerates the table and
//! benchmarks trace synthesis.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use edm_bench::artifact_scale;
use edm_harness::experiments::table1;
use edm_workload::harvard;
use edm_workload::synth::synthesize;

fn bench(c: &mut Criterion) {
    println!("{}", table1::render(&table1::run(artifact_scale())));

    let mut g = c.benchmark_group("table1");
    for name in ["home02", "deasna", "lair62"] {
        let spec = harvard::spec(name).scaled(0.01);
        g.bench_function(format!("synthesize/{name}@1%"), |b| {
            b.iter_batched(|| spec.clone(), |s| synthesize(&s), BatchSize::SmallInput)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

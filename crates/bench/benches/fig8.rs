//! Figure 8 — total moved objects and remapping-table growth:
//! regenerates the table and benchmarks the remapping table itself.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_bench::artifact_config;
use edm_cluster::{ObjectId, OsdId, RemappingTable};
use edm_harness::experiments::fig8;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = artifact_config();
    let traces: Vec<&str> = if std::env::var("EDM_BENCH_FULL").is_ok() {
        edm_workload::harvard::TRACE_NAMES.to_vec()
    } else {
        vec!["home02", "deasna", "lair62"]
    };
    println!("{}", fig8::render(&fig8::run(&cfg, 16, &traces)));

    let mut g = c.benchmark_group("fig8");
    g.bench_function("remap_table/100k_moves", |b| {
        b.iter(|| {
            let mut t = RemappingTable::new();
            for i in 0..100_000u64 {
                t.record_move(ObjectId(black_box(i % 10_000)), OsdId((i % 16) as u32));
            }
            t.len()
        })
    });
    g.bench_function("remap_table/lookup_hit_and_miss", |b| {
        let mut t = RemappingTable::new();
        for i in 0..10_000u64 {
            t.record_move(ObjectId(i), OsdId((i % 16) as u32));
        }
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..20_000u64 {
                if let Some(o) = t.lookup(ObjectId(black_box(i))) {
                    acc = acc.wrapping_add(o.0);
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

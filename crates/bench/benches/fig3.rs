//! Figure 3 — measured vs estimated uᵣ(u): regenerates the four series
//! and benchmarks a single-point uᵣ measurement plus the F(u) solver.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_bench::artifact_config;
use edm_core::WearModel;
use edm_harness::experiments::fig3;
use edm_workload::harvard;
use edm_workload::synth::synthesize;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let grid = fig3::default_grid();
    println!("{}", fig3::render(&fig3::run(&artifact_config(), &grid)));

    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    let trace = synthesize(&harvard::spec("deasna").scaled(0.002));
    g.bench_function("measure_ur/deasna@0.2%/u=0.7", |b| {
        b.iter(|| fig3::measure_ur(black_box(&trace), 0.7))
    });
    let model = WearModel::paper(32);
    g.bench_function("f_of_u_solver", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..100 {
                acc += model.f_of_u(black_box(i as f64 / 100.0));
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Micro-benchmarks of Algorithm 1 and the wear model: planning cost at
//! the paper's parameters (500 iterations, ε grid 0.001) and the ε-grid
//! ablation of DESIGN.md §6.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_core::{calculate_cdf, calculate_hdf, Alg1Config, WearModel};
use std::hint::black_box;

fn inputs(n: usize) -> (Vec<f64>, Vec<f64>) {
    let wc: Vec<f64> = (0..n)
        .map(|i| 10_000.0 + (i as f64 * 9871.0) % 90_000.0)
        .collect();
    let u: Vec<f64> = (0..n).map(|i| 0.45 + (i as f64 * 0.37) % 0.4).collect();
    (wc, u)
}

fn bench(c: &mut Criterion) {
    let model = WearModel::paper(32);
    let mut g = c.benchmark_group("micro_alg1");

    for n in [4usize, 20, 100] {
        let (wc, u) = inputs(n);
        g.bench_function(format!("hdf/{n}_devices/paper_params"), |b| {
            b.iter(|| {
                calculate_hdf(
                    black_box(&wc),
                    black_box(&u),
                    &model,
                    &Alg1Config::default(),
                )
            })
        });
        g.bench_function(format!("cdf/{n}_devices/paper_params"), |b| {
            b.iter(|| {
                calculate_cdf(
                    black_box(&wc),
                    black_box(&u),
                    &model,
                    &Alg1Config::default(),
                )
            })
        });
    }

    // ε-grid ablation: planning cost vs grid resolution.
    let (wc, u) = inputs(20);
    for eps in [0.01, 0.001, 0.0001] {
        let cfg = Alg1Config {
            eps_step: eps,
            ..Alg1Config::default()
        };
        g.bench_function(format!("hdf/20_devices/eps_{eps}"), |b| {
            b.iter(|| calculate_hdf(black_box(&wc), black_box(&u), &model, &cfg))
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

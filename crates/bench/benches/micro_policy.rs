//! Micro-benchmarks of the policy hot paths: access tracking (called on
//! every object I/O), temperature queries, and full plan construction on
//! a populated view.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edm_cluster::{
    AccessEvent, AccessKind, ClusterView, GroupId, Migrator, ObjectId, ObjectView, OsdId, OsdView,
};
use edm_core::{AccessTracker, Cmt, EdmCdf, EdmHdf};
use std::hint::black_box;

fn synthetic_view(osds: u32, objects: u64) -> ClusterView {
    ClusterView {
        now_us: 60_000_000,
        page_size: 4096,
        pages_per_block: 32,
        osds: (0..osds)
            .map(|i| OsdView {
                osd: OsdId(i),
                group: GroupId(i % 4),
                wc_pages: 10_000 + (i as u64 * 7919) % 60_000,
                utilization: 0.45 + (i as f64 * 0.31) % 0.3,
                measured_erases: 0,
                ewma_latency_us: 500.0 + (i as f64 * 137.0) % 2_000.0,
                free_bytes: 1 << 28,
                capacity_bytes: 1 << 30,
            })
            .collect(),
        objects: (0..objects)
            .map(|i| ObjectView {
                object: ObjectId(i),
                osd: OsdId((i % osds as u64) as u32),
                size_bytes: 64 * 1024 * (1 + i % 16),
                remapped: i % 50 == 0,
            })
            .collect(),
    }
}

fn heat_tracker(policy: &mut dyn Migrator, objects: u64, events: u64) {
    let mut x = 0xDEADBEEFu64;
    for _ in 0..events {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        policy.on_access(AccessEvent {
            now_us: x % 120_000_000,
            object: ObjectId((x >> 13) % objects),
            kind: if x.is_multiple_of(3) {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            pages: 1 + x % 8,
        });
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_policy");

    let n = 1_000_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("access_tracker/record_1M", |b| {
        b.iter(|| {
            let mut t = AccessTracker::new(60_000_000);
            let mut x = 1u64;
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                t.record(AccessEvent {
                    now_us: x % 600_000_000,
                    object: ObjectId((x >> 20) % 40_000),
                    kind: AccessKind::Write,
                    pages: 2,
                });
            }
            t.tracked_objects()
        })
    });

    g.throughput(Throughput::Elements(1));
    let view = synthetic_view(16, 40_000);
    g.bench_function("plan/EDM-HDF/16osd_40k_objects", |b| {
        let mut p = EdmHdf::default();
        heat_tracker(&mut p, 40_000, 200_000);
        b.iter(|| black_box(p.plan(&view)).len())
    });
    g.bench_function("plan/EDM-CDF/16osd_40k_objects", |b| {
        let mut p = EdmCdf::default();
        heat_tracker(&mut p, 40_000, 200_000);
        b.iter(|| black_box(p.plan(&view)).len())
    });
    g.bench_function("plan/CMT/16osd_40k_objects", |b| {
        let mut p = Cmt::default();
        heat_tracker(&mut p, 40_000, 200_000);
        b.iter(|| black_box(p.plan(&view)).len())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 5 — aggregate throughput across traces, policies, and cluster
//! sizes: regenerates the table (use EDM_BENCH_SCALE and EDM_BENCH_FULL
//! to widen it) and benchmarks one cell per policy.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_bench::{artifact_config, timed_config};
use edm_harness::experiments::fig56;
use edm_harness::runner::{run_cell, Cell};

fn bench(c: &mut Criterion) {
    // Full paper matrix (7 traces × 16,20 OSDs) with EDM_BENCH_FULL=1;
    // a 3-trace, 16-OSD slice otherwise to keep startup reasonable.
    let cfg = artifact_config();
    let m = if std::env::var("EDM_BENCH_FULL").is_ok() {
        fig56::run_paper(&cfg)
    } else {
        fig56::run(&cfg, &[16], &["home02", "deasna", "lair62"])
    };
    println!("{}", fig56::render_fig5(&m));

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    let cfg = timed_config();
    for policy in edm_core::POLICY_NAMES {
        g.bench_function(format!("cell/home02@0.2%/{policy}"), |b| {
            b.iter(|| run_cell(&Cell::new("home02", policy, 8), &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

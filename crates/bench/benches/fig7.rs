//! Figure 7 — mean response time during migration: regenerates the
//! time series for the three motivation traces and benchmarks the
//! windowed-metrics bookkeeping.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_bench::{artifact_config, timed_config};
use edm_cluster::metrics::ResponseSeries;
use edm_harness::experiments::fig7;
use edm_harness::runner::{run_cell, Cell};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig7::render(&fig7::run(&artifact_config(), 16)));

    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    let cfg = timed_config();
    g.bench_function("cell/home02@0.2%/EDM-HDF", |b| {
        b.iter(|| run_cell(&Cell::new("home02", "EDM-HDF", 8), &cfg))
    });
    g.bench_function("response_series/1M_records", |b| {
        b.iter(|| {
            let mut s = ResponseSeries::new(180_000_000);
            for i in 0..1_000_000u64 {
                s.record(black_box(i * 37), black_box(i % 5_000));
            }
            s.windows().len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

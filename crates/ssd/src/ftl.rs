//! Page-level flash translation layer with greedy garbage collection.
//!
//! This reproduces the substrate the paper runs on (§IV): a page-level FTL
//! in the style of Kawaguchi et al. \[11\] with the well-known greedy
//! reclaiming policy \[6\] — "the GC process first selects the block with the
//! least number of valid pages as the victim block, then all valid pages in
//! that block are copied to another block with free pages and the victim
//! block is erased subsequently" (§III.B.1).
//!
//! Out-of-place update: a logical overwrite programs a fresh physical page
//! and invalidates the old copy; erases happen only through GC.

use std::collections::VecDeque;

use edm_obs::{Event, NoopRecorder, Recorder};
use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

use crate::block::Block;
use crate::geometry::Geometry;
use crate::latency::{DeviceTime, LatencyModel};
use crate::victim::VictimBuckets;
use crate::wear::WearStats;
use crate::wear_leveling::{FreePool, SpreadTracker, WearLevelConfig};

/// A physical page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysPage {
    pub block: u32,
    pub page: u32,
}

impl PhysPage {
    fn linear(self, pages_per_block: u32) -> usize {
        self.block as usize * pages_per_block as usize + self.page as usize
    }
}

/// Errors surfaced by FTL operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The logical page number is beyond the exported capacity.
    OutOfRange { lpn: u64, exported: u64 },
    /// All exported logical pages are mapped; nothing can be reclaimed.
    DeviceFull,
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::OutOfRange { lpn, exported } => {
                write!(f, "logical page {lpn} out of range (exported {exported})")
            }
            FtlError::DeviceFull => write!(f, "device full: no reclaimable space"),
        }
    }
}

impl std::error::Error for FtlError {}

/// Victim-selection policy of the garbage collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum VictimPolicy {
    /// The paper's choice \[6\]: reclaim the full block with the fewest
    /// valid pages.
    #[default]
    Greedy,
    /// Reclaim blocks in retirement order regardless of validity — the
    /// classic low-overhead alternative, provided for the ablation of the
    /// greedy assumption baked into the wear model (Eq. 1).
    Fifo,
    /// LFS-style cost-benefit cleaning \[18\]: maximize
    /// `age · (1 − u) / (1 + u)` where `u` is the block's valid ratio and
    /// age is how long ago the block was retired. Beats greedy when cold
    /// data should be compacted out of the way.
    CostBenefit,
}

impl VictimPolicy {
    /// Stable lower-case label used in journal events and reports.
    pub fn label(self) -> &'static str {
        match self {
            VictimPolicy::Greedy => "greedy",
            VictimPolicy::Fifo => "fifo",
            VictimPolicy::CostBenefit => "cost_benefit",
        }
    }
}

/// Tunables of the FTL's garbage collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlConfig {
    /// GC starts when the free-block pool drops below this.
    pub gc_low_watermark: u32,
    /// GC keeps reclaiming until the pool is back at this level.
    pub gc_high_watermark: u32,
    /// How GC picks its victim blocks.
    pub victim_policy: VictimPolicy,
    /// Device-internal wear leveling (dynamic least-worn allocation and
    /// the static-leveling trigger).
    pub wear_leveling: WearLevelConfig,
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            gc_low_watermark: 2,
            gc_high_watermark: 4,
            victim_policy: VictimPolicy::Greedy,
            wear_leveling: WearLevelConfig::DEFAULT,
        }
    }
}

/// Page-level FTL over a set of erase blocks. `Clone` exists for the
/// cluster simulator's group-sharded runner, which duplicates whole
/// devices per shard.
#[derive(Clone)]
pub struct PageLevelFtl {
    geometry: Geometry,
    config: FtlConfig,
    blocks: Vec<Block>,
    /// Logical → physical map; `None` = unmapped (never written or trimmed).
    l2p: Vec<Option<PhysPage>>,
    /// Physical → logical back-map for GC relocation.
    p2l: Vec<Option<u64>>,
    /// Fully erased blocks ready to become write targets (wear-ordered
    /// under dynamic leveling).
    free_blocks: FreePool,
    /// Current target of host writes.
    active: Option<u32>,
    /// Current target of GC relocation writes (kept separate from `active`
    /// so a GC pass can always make forward progress).
    gc_active: Option<u32>,
    /// Full blocks eligible as GC victims, bucketed by valid-page count
    /// so the per-invalidation update is O(1).
    candidates: VictimBuckets,
    /// Retirement order of full blocks. Maintained only under the FIFO
    /// victim policy — the other policies never read it, and feeding it
    /// anyway made it grow without bound (nothing ever drained it).
    retire_order: VecDeque<u32>,
    /// Incremental per-block erase-count extremes for the static-leveling
    /// trigger (replaces an O(blocks) scan per GC collection).
    spread: SpreadTracker,
    /// Monotonic retirement stamps (age proxy for cost-benefit cleaning).
    retire_seq: Vec<u64>,
    next_seq: u64,
    mapped_pages: u64,
    stats: WearStats,
}

impl PageLevelFtl {
    pub fn new(geometry: Geometry, config: FtlConfig) -> Self {
        // edm-audit: allow(panic.expect, "constructor contract: callers pass validated geometry")
        geometry.validate().expect("invalid flash geometry");
        assert!(
            config.gc_low_watermark >= 2,
            "GC needs at least two spare blocks (host active + GC active)"
        );
        assert!(
            config.gc_high_watermark > config.gc_low_watermark,
            "high watermark must exceed low watermark"
        );
        assert!(
            geometry.blocks > config.gc_high_watermark + 2,
            "device too small for the configured GC watermarks"
        );
        let blocks: Vec<Block> = (0..geometry.blocks)
            .map(|_| Block::new(geometry.pages_per_block))
            .collect();
        PageLevelFtl {
            l2p: vec![None; geometry.exported_pages() as usize],
            p2l: vec![None; geometry.physical_pages() as usize],
            free_blocks: FreePool::new(0..geometry.blocks, config.wear_leveling.dynamic),
            active: None,
            gc_active: None,
            candidates: VictimBuckets::new(geometry.blocks, geometry.pages_per_block),
            retire_order: VecDeque::new(),
            spread: SpreadTracker::new(geometry.blocks),
            retire_seq: vec![0; geometry.blocks as usize],
            next_seq: 0,
            mapped_pages: 0,
            stats: WearStats::default(),
            blocks,
            geometry,
            config,
        }
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    pub fn stats(&self) -> &WearStats {
        &self.stats
    }

    pub fn stats_mut(&mut self) -> &mut WearStats {
        &mut self.stats
    }

    /// Live logical pages currently mapped.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Disk utilization `u` of the paper's wear model: live data divided by
    /// exported capacity.
    pub fn utilization(&self) -> f64 {
        self.mapped_pages as f64 / self.geometry.exported_pages() as f64
    }

    /// True if the logical page is currently mapped.
    pub fn is_mapped(&self, lpn: u64) -> bool {
        (lpn as usize) < self.l2p.len() && self.l2p[lpn as usize].is_some()
    }

    /// Host read of one logical page. Unmapped pages read as erased data
    /// and still cost a page read (the device cannot tell).
    pub fn read(&mut self, lpn: u64, latency: &LatencyModel) -> Result<DeviceTime, FtlError> {
        self.read_span(lpn, 1, latency)
    }

    /// Host write of one logical page (out-of-place update). Returns the
    /// device time consumed, including any garbage collection it triggered.
    pub fn write(&mut self, lpn: u64, latency: &LatencyModel) -> Result<DeviceTime, FtlError> {
        self.write_span(lpn, 1, latency)
    }

    /// Unmaps a logical page (object deletion / hole punch). Free.
    pub fn trim(&mut self, lpn: u64) -> Result<(), FtlError> {
        self.trim_span(lpn, 1)
    }

    /// Host read of `n` consecutive logical pages starting at `start`.
    ///
    /// Equivalent to `n` single-page reads, but validates the range once
    /// and charges the latency in one batch. On a span that runs past the
    /// exported capacity the in-range prefix is still accounted (exactly
    /// what the per-page loop did before failing) and the error carries
    /// the first out-of-range page.
    pub fn read_span(
        &mut self,
        start: u64,
        n: u64,
        latency: &LatencyModel,
    ) -> Result<DeviceTime, FtlError> {
        if n == 0 {
            return Ok(DeviceTime::ZERO);
        }
        let exported = self.geometry.exported_pages();
        if start >= exported {
            return Err(FtlError::OutOfRange {
                lpn: start,
                exported,
            });
        }
        let in_range = n.min(exported - start);
        self.stats.host_page_reads += in_range;
        if in_range < n {
            return Err(FtlError::OutOfRange {
                lpn: exported,
                exported,
            });
        }
        Ok(latency.read_pages(n))
    }

    /// Host write of `n` consecutive logical pages starting at `start`
    /// (out-of-place updates). Returns the device time consumed, including
    /// any garbage collection the span triggered.
    ///
    /// Equivalent to `n` single-page writes: same mapping evolution, same
    /// GC decisions, same total time (per-page program latencies are
    /// linear, so they are charged in one batch at the end). A mid-span
    /// error (device full, or the span running past the exported range)
    /// leaves the successfully written prefix in place, as the per-page
    /// loop did.
    pub fn write_span(
        &mut self,
        start: u64,
        n: u64,
        latency: &LatencyModel,
    ) -> Result<DeviceTime, FtlError> {
        self.write_span_obs(start, n, latency, &mut NoopRecorder)
    }

    /// [`write_span`](Self::write_span) with an observability sink: GC
    /// invocations, victim picks, erases, and wear-leveling swaps the span
    /// triggers are reported to `obs`. Recording is read-only — behaviour
    /// and device time are identical for every recorder.
    pub fn write_span_obs(
        &mut self,
        start: u64,
        n: u64,
        latency: &LatencyModel,
        obs: &mut dyn Recorder,
    ) -> Result<DeviceTime, FtlError> {
        if n == 0 {
            return Ok(DeviceTime::ZERO);
        }
        let exported = self.geometry.exported_pages();
        if start >= exported {
            return Err(FtlError::OutOfRange {
                lpn: start,
                exported,
            });
        }
        let in_range = n.min(exported - start);
        let mut result = if in_range < n {
            Err(FtlError::OutOfRange {
                lpn: exported,
                exported,
            })
        } else {
            Ok(())
        };
        let mut elapsed = DeviceTime::ZERO;
        let mut written = 0u64;
        let end = start + in_range;
        let mut lpn = start;
        // Walk the span in runs bounded by the active block's free pages:
        // the per-page loop re-checks the active block on every write, but
        // within a run it cannot fill up, so the block setup (and the GC
        // trigger) happens once per run instead of once per page.
        'span: while lpn < end {
            // The per-page path reports DeviceFull *before* it would
            // trigger GC for that page; probe the run's first page the
            // same way so an error leaves identical wear behind.
            if self.l2p[lpn as usize].is_none() && self.mapped_pages >= exported {
                result = Err(FtlError::DeviceFull);
                break;
            }
            match self.ensure_host_active(latency, obs) {
                Ok(gc_time) => elapsed += gc_time,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
            // edm-audit: allow(panic.expect, "ensure_host_active on the previous line installs an active block")
            let active = self.active.expect("ensure_host_active provides a block");
            let run = (end - lpn).min(self.blocks[active as usize].free_pages() as u64);
            for _ in 0..run {
                if let Some(old) = self.l2p[lpn as usize].take() {
                    self.invalidate_phys(old);
                } else {
                    if self.mapped_pages >= exported {
                        result = Err(FtlError::DeviceFull);
                        break 'span;
                    }
                    self.mapped_pages += 1;
                }
                let page = self.program_into(active, lpn);
                self.l2p[lpn as usize] = Some(PhysPage {
                    block: active,
                    page,
                });
                written += 1;
                lpn += 1;
            }
            if self.blocks[active as usize].is_full() {
                self.retire(active);
                self.active = None;
            }
        }
        self.stats.host_page_writes += written;
        result?;
        Ok(elapsed + latency.write_pages(written))
    }

    /// Unmaps `n` consecutive logical pages starting at `start`. Free.
    ///
    /// Like the per-page loop, an over-long span still trims the in-range
    /// prefix before reporting the first out-of-range page.
    pub fn trim_span(&mut self, start: u64, n: u64) -> Result<(), FtlError> {
        if n == 0 {
            return Ok(());
        }
        let exported = self.geometry.exported_pages();
        if start >= exported {
            return Err(FtlError::OutOfRange {
                lpn: start,
                exported,
            });
        }
        let in_range = n.min(exported - start);
        let mut unmapped = 0u64;
        for lpn in start..start + in_range {
            if let Some(phys) = self.l2p[lpn as usize].take() {
                self.invalidate_phys(phys);
                unmapped += 1;
            }
        }
        self.mapped_pages -= unmapped;
        if in_range < n {
            return Err(FtlError::OutOfRange {
                lpn: exported,
                exported,
            });
        }
        Ok(())
    }

    /// Programs one page of `block` recording the owning logical page, and
    /// returns the in-block page index.
    fn program_into(&mut self, block: u32, lpn: u64) -> u32 {
        let page = self.blocks[block as usize].program();
        let phys = PhysPage { block, page };
        self.p2l[phys.linear(self.geometry.pages_per_block)] = Some(lpn);
        page
    }

    fn invalidate_phys(&mut self, phys: PhysPage) {
        let block = phys.block;
        // Keep the victim-candidate bucketing in sync with the new count;
        // a no-op for non-candidates (active blocks, GC victims in flight).
        self.candidates.decrement(block);
        self.blocks[block as usize].invalidate(phys.page);
        self.p2l[phys.linear(self.geometry.pages_per_block)] = None;
    }

    /// Moves a just-filled block into the victim-candidate set.
    fn retire(&mut self, block: u32) {
        debug_assert!(self.blocks[block as usize].is_full());
        self.candidates
            .insert(block, self.blocks[block as usize].valid_pages());
        if self.config.victim_policy == VictimPolicy::Fifo {
            self.retire_order.push_back(block);
        }
        self.next_seq += 1;
        self.retire_seq[block as usize] = self.next_seq;
    }

    /// Selects the next victim according to the configured policy; the
    /// returned pair is (valid pages, block). `None` when nothing is
    /// reclaimable.
    fn select_victim(&mut self) -> Option<(u32, u32)> {
        match self.config.victim_policy {
            VictimPolicy::Greedy => {
                let (valid, victim) = self.candidates.peek_min()?;
                if valid == self.geometry.pages_per_block {
                    // Every candidate is fully valid: erasing frees nothing.
                    return None;
                }
                Some((valid, victim))
            }
            VictimPolicy::CostBenefit => {
                // Linear scan: maximize age·(1−u)/(1+u); fully valid blocks
                // score 0 and are skipped unless nothing else exists. Ties
                // break toward the smallest (valid, block) pair — the
                // element the former ordered scan kept by encountering it
                // first.
                let np = self.geometry.pages_per_block as f64;
                let mut best: Option<(f64, u32, u32)> = None;
                for (valid, block) in self.candidates.iter() {
                    if valid == self.geometry.pages_per_block {
                        continue;
                    }
                    let u = valid as f64 / np;
                    let age = (self.next_seq - self.retire_seq[block as usize] + 1) as f64;
                    let score = age * (1.0 - u) / (1.0 + u);
                    let better = match best {
                        None => true,
                        Some((bs, bv, bb)) => {
                            score > bs || (score == bs && (valid, block) < (bv, bb))
                        }
                    };
                    if better {
                        best = Some((score, valid, block));
                    }
                }
                best.map(|(_, valid, block)| (valid, block))
            }
            VictimPolicy::Fifo => {
                // Oldest retired block that is still a candidate; skip (and
                // drop) stale entries for blocks already erased. Unlike
                // greedy, FIFO reclaims even fully-valid blocks (a zero-gain
                // pass that advances the circle), so the caller bounds the
                // number of passes per collection.
                //
                // Stale entries come only from static leveling reclaiming a
                // mid-queue block, at most one per collection, and every
                // entry surfaces here within one tour of the queue — so the
                // deque stays O(blocks). Entries are deliberately *not*
                // purged when the block is erased: if the block refills and
                // retires again before its old entry surfaces, FIFO serves
                // it at its oldest position.
                while let Some(&block) = self.retire_order.front() {
                    if let Some(valid) = self.candidates.valid_of(block) {
                        return Some((valid, block));
                    }
                    self.retire_order.pop_front();
                }
                None
            }
        }
    }

    /// Makes sure a host-active block with free pages exists, running GC
    /// first if the free pool is low.
    fn ensure_host_active(
        &mut self,
        latency: &LatencyModel,
        obs: &mut dyn Recorder,
    ) -> Result<DeviceTime, FtlError> {
        let mut elapsed = DeviceTime::ZERO;
        if self.active.is_none() {
            if self.free_blocks.len() < self.config.gc_low_watermark as usize {
                elapsed += self.collect_garbage(latency, obs)?;
            }
            let block = self.free_blocks.pop().ok_or(FtlError::DeviceFull)?;
            self.active = Some(block);
        }
        Ok(elapsed)
    }

    /// Runs greedy GC passes until the free pool reaches the high watermark
    /// (or no reclaimable victim remains).
    fn collect_garbage(
        &mut self,
        latency: &LatencyModel,
        obs: &mut dyn Recorder,
    ) -> Result<DeviceTime, FtlError> {
        obs.counter("ftl.gc_invocations", 1);
        if obs.events_on() {
            obs.event(Event::GcInvoked {
                free_blocks: self.free_blocks.len() as u64,
                low_watermark: self.config.gc_low_watermark as u64,
                high_watermark: self.config.gc_high_watermark as u64,
            });
        }
        let mut elapsed = DeviceTime::ZERO;
        // Pass bound: FIFO may take zero-gain passes over fully-valid
        // blocks; one full tour of the device is enough to reach every
        // reclaimable block, so 2× that means no progress is possible.
        let mut passes = 0usize;
        let max_passes = 2 * self.geometry.blocks as usize;
        while self.free_blocks.len() < self.config.gc_high_watermark as usize && passes < max_passes
        {
            match self.gc_pass(latency, obs)? {
                Some(t) => elapsed += t,
                None => break, // nothing reclaimable right now
            }
            passes += 1;
        }
        elapsed += self.maybe_static_level(latency, obs)?;
        // Journaled event streams are validated in dev builds: every GC
        // collection (and the static-level swap it may piggyback) must
        // leave the mapping tables consistent.
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(elapsed)
    }

    /// Static wear leveling: when the per-block erase spread exceeds the
    /// configured threshold, reclaim the least-worn full block (which is
    /// where long-lived cold data pins wear at zero) so it re-enters
    /// circulation. At most one pass per collection.
    fn maybe_static_level(
        &mut self,
        latency: &LatencyModel,
        obs: &mut dyn Recorder,
    ) -> Result<DeviceTime, FtlError> {
        let threshold = self.config.wear_leveling.static_threshold;
        if threshold == 0 || self.free_blocks.len() < 2 {
            return Ok(DeviceTime::ZERO);
        }
        if !self.spread.due(threshold) {
            return Ok(DeviceTime::ZERO);
        }
        // Least-worn candidate block (full, not active): its content is
        // cold by construction — hot data would have churned it. Ties
        // break toward the smallest (valid, block), matching the first
        // minimum of the former ordered scan.
        let mut best: Option<(u64, u32, u32)> = None;
        for (valid, block) in self.candidates.iter() {
            let key = (self.blocks[block as usize].erase_count(), valid, block);
            // edm-audit: allow(panic.expect, "short-circuit: is_none() was checked first")
            if best.is_none() || key < best.expect("just checked") {
                best = Some(key);
            }
        }
        let Some((_, valid, victim)) = best else {
            return Ok(DeviceTime::ZERO);
        };
        self.candidates.remove(victim);
        if self.retire_order.front() == Some(&victim) {
            self.retire_order.pop_front();
        }
        obs.counter("ftl.wear_level_swaps", 1);
        if obs.events_on() {
            obs.event(Event::WearLevelSwap {
                block: victim as u64,
                valid_pages: valid as u64,
                wear_spread: self.spread.max() - self.spread.min(),
            });
        }
        let t = self.relocate_and_erase(victim, valid, latency, obs)?;
        // The swap relocates a whole block of cold data; validate the
        // result in dev builds just like a normal GC pass.
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(t)
    }

    /// One greedy GC pass: pick the full block with the fewest valid pages,
    /// relocate its live pages, erase it. Returns `None` when no victim is
    /// available or reclaiming it would free nothing.
    fn gc_pass(
        &mut self,
        latency: &LatencyModel,
        obs: &mut dyn Recorder,
    ) -> Result<Option<DeviceTime>, FtlError> {
        let Some((valid, victim)) = self.select_victim() else {
            return Ok(None);
        };
        self.candidates.remove(victim);
        if self.retire_order.front() == Some(&victim) {
            self.retire_order.pop_front();
        }
        if obs.events_on() {
            obs.event(Event::GcVictim {
                block: victim as u64,
                valid_pages: valid as u64,
                policy: self.config.victim_policy.label(),
            });
        }
        let t = self.relocate_and_erase(victim, valid, latency, obs)?;
        Ok(Some(t))
    }

    /// Relocates the victim's live pages into the GC stream, erases it,
    /// and returns it to the free pool; charges wear statistics. The
    /// victim must already be out of the candidate set.
    fn relocate_and_erase(
        &mut self,
        victim: u32,
        valid: u32,
        latency: &LatencyModel,
        obs: &mut dyn Recorder,
    ) -> Result<DeviceTime, FtlError> {
        // Walk the victim's live pages with a cursor instead of collecting
        // them first: relocation only invalidates pages the cursor has
        // already passed, so the walk stays sound and allocation-free.
        let mut moved = 0u32;
        let mut cursor = 0u32;
        while let Some(page) = self.blocks[victim as usize].next_valid_page(cursor) {
            cursor = page + 1;
            let lpn = self.p2l[PhysPage {
                block: victim,
                page,
            }
            .linear(self.geometry.pages_per_block)]
            // edm-audit: allow(panic.expect, "FTL invariant: reverse map covers every valid page")
            .expect("valid page must have an owner");
            let dest = self.ensure_gc_active()?;
            let dest_page = self.program_into(dest, lpn);
            // Invalidate the old copy directly: the victim is out of the
            // candidate set so no ordering bookkeeping is needed.
            self.blocks[victim as usize].invalidate(page);
            self.p2l[PhysPage {
                block: victim,
                page,
            }
            .linear(self.geometry.pages_per_block)] = None;
            self.l2p[lpn as usize] = Some(PhysPage {
                block: dest,
                page: dest_page,
            });
            if self.blocks[dest as usize].is_full() {
                self.retire(dest);
                self.gc_active = None;
            }
            moved += 1;
        }
        debug_assert_eq!(moved, valid);

        self.blocks[victim as usize].erase();
        let wear = self.blocks[victim as usize].erase_count();
        self.spread.record_erase(wear - 1);
        self.free_blocks.push(victim, wear);
        self.stats.block_erases += 1;
        self.stats.gc_victims += 1;
        self.stats.victim_valid_pages += valid as u64;
        self.stats.gc_page_moves += valid as u64;
        obs.counter("ftl.block_erases", 1);
        obs.counter("ftl.gc_page_moves", valid as u64);
        if obs.events_on() {
            obs.event(Event::BlockErase {
                block: victim as u64,
                erase_count: wear,
                moved_pages: valid as u64,
            });
        }
        Ok(latency.gc_pass(valid as u64))
    }

    fn ensure_gc_active(&mut self) -> Result<u32, FtlError> {
        if self.gc_active.is_none() {
            // Safe: GC only runs while the pool is below the high watermark,
            // and every pass returns one block, so the pool cannot starve
            // as long as the watermarks reserve two blocks.
            let block = self.free_blocks.pop().ok_or(FtlError::DeviceFull)?;
            self.gc_active = Some(block);
        }
        // edm-audit: allow(panic.expect, "ensure_gc_active on the previous line installs a GC block")
        Ok(self.gc_active.expect("just ensured"))
    }

    /// Per-block erase counts (wear-leveling visibility; Fig. 1 uses the
    /// aggregate, the tests use the distribution).
    pub fn block_erase_counts(&self) -> Vec<u64> {
        self.blocks.iter().map(|b| b.erase_count()).collect()
    }

    /// Number of blocks in the erased free pool.
    pub fn free_block_count(&self) -> usize {
        self.free_blocks.len()
    }

    /// Internal consistency check used by tests and `debug_assert!` call
    /// sites: mapping tables, valid counters, and the candidate set must
    /// all agree.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mapped = self.l2p.iter().filter(|m| m.is_some()).count() as u64;
        if mapped != self.mapped_pages {
            return Err(format!(
                "mapped_pages counter {} != l2p population {}",
                self.mapped_pages, mapped
            ));
        }
        let valid_total: u64 = self.blocks.iter().map(|b| b.valid_pages() as u64).sum();
        if valid_total != mapped {
            return Err(format!(
                "block valid totals {valid_total} != mapped pages {mapped}"
            ));
        }
        for (lpn, phys) in self.l2p.iter().enumerate() {
            if let Some(p) = phys {
                let back = self.p2l[p.linear(self.geometry.pages_per_block)];
                if back != Some(lpn as u64) {
                    return Err(format!("l2p/p2l disagree for lpn {lpn}: {back:?}"));
                }
                if self.blocks[p.block as usize].state(p.page) != crate::block::PageState::Valid {
                    return Err(format!("lpn {lpn} maps to a non-valid physical page"));
                }
            }
        }
        self.candidates.check_consistency()?;
        for (valid, block) in self.candidates.iter() {
            if self.blocks[block as usize].valid_pages() != valid {
                return Err(format!(
                    "candidate set stale for block {block}: recorded {valid}, actual {}",
                    self.blocks[block as usize].valid_pages()
                ));
            }
            if !self.blocks[block as usize].is_full() {
                return Err(format!("candidate block {block} is not full"));
            }
        }
        for f in self.free_blocks.iter() {
            if !self.blocks[f as usize].is_erased() {
                return Err(format!("free-pool block {f} is not erased"));
            }
        }
        if self.config.victim_policy != VictimPolicy::Fifo && !self.retire_order.is_empty() {
            return Err(format!(
                "retire_order has {} entries under {:?} (only FIFO feeds it)",
                self.retire_order.len(),
                self.config.victim_policy
            ));
        }
        // FIFO's deque holds each candidate at most once plus stale
        // entries that drain within one queue tour; far under 2×blocks.
        if self.retire_order.len() > 2 * self.geometry.blocks as usize {
            return Err(format!(
                "retire_order grew to {} entries for {} blocks",
                self.retire_order.len(),
                self.geometry.blocks
            ));
        }
        let tracked_min = self.spread.min();
        let tracked_max = self.spread.max();
        let actual_min = self
            .blocks
            .iter()
            .map(|b| b.erase_count())
            .min()
            .unwrap_or(0);
        let actual_max = self
            .blocks
            .iter()
            .map(|b| b.erase_count())
            .max()
            .unwrap_or(0);
        if (tracked_min, tracked_max) != (actual_min, actual_max) {
            return Err(format!(
                "spread tracker ({tracked_min}, {tracked_max}) disagrees with \
                 erase counts ({actual_min}, {actual_max})"
            ));
        }
        Ok(())
    }
}

impl Snapshot for PhysPage {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u32(self.block);
        w.put_u32(self.page);
    }
    fn load(r: &mut SnapReader) -> Self {
        PhysPage {
            block: r.take_u32(),
            page: r.take_u32(),
        }
    }
}

impl Snapshot for VictimPolicy {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            VictimPolicy::Greedy => 0,
            VictimPolicy::Fifo => 1,
            VictimPolicy::CostBenefit => 2,
        });
    }
    fn load(r: &mut SnapReader) -> Self {
        match r.take_u8() {
            0 => VictimPolicy::Greedy,
            1 => VictimPolicy::Fifo,
            2 => VictimPolicy::CostBenefit,
            _ => {
                r.corrupt("VictimPolicy tag");
                VictimPolicy::Greedy
            }
        }
    }
}

impl Snapshot for FtlConfig {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u32(self.gc_low_watermark);
        w.put_u32(self.gc_high_watermark);
        self.victim_policy.save(w);
        self.wear_leveling.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        FtlConfig {
            gc_low_watermark: r.take_u32(),
            gc_high_watermark: r.take_u32(),
            victim_policy: VictimPolicy::load(r),
            wear_leveling: WearLevelConfig::load(r),
        }
    }
}

impl Snapshot for PageLevelFtl {
    /// Every field is serialized exactly — including derived structures
    /// whose internal order affects future decisions (free pool, victim
    /// buckets, FIFO retire queue) — so a restored FTL replays the exact
    /// same GC and allocation sequence as the original.
    fn save(&self, w: &mut SnapWriter) {
        self.geometry.save(w);
        self.config.save(w);
        self.blocks.save(w);
        self.l2p.save(w);
        self.p2l.save(w);
        self.free_blocks.save(w);
        self.active.save(w);
        self.gc_active.save(w);
        self.candidates.save(w);
        self.retire_order.save(w);
        self.spread.save(w);
        self.retire_seq.save(w);
        w.put_u64(self.next_seq);
        w.put_u64(self.mapped_pages);
        self.stats.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        let ftl = PageLevelFtl {
            geometry: Geometry::load(r),
            config: FtlConfig::load(r),
            blocks: Vec::load(r),
            l2p: Vec::load(r),
            p2l: Vec::load(r),
            free_blocks: FreePool::load(r),
            active: Option::load(r),
            gc_active: Option::load(r),
            candidates: VictimBuckets::load(r),
            retire_order: VecDeque::load(r),
            spread: SpreadTracker::load(r),
            retire_seq: Vec::load(r),
            next_seq: r.take_u64(),
            mapped_pages: r.take_u64(),
            stats: WearStats::load(r),
        };
        if !r.failed() {
            if let Err(e) = ftl.check_invariants() {
                r.corrupt(format!("FTL invariants: {e}"));
            }
        }
        ftl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PageLevelFtl {
        // 16 blocks × 4 pages, 8 % OP.
        let g = Geometry {
            page_size: 4096,
            pages_per_block: 4,
            blocks: 16,
            over_provision_ppt: 200,
        };
        PageLevelFtl::new(g, FtlConfig::default())
    }

    #[test]
    fn write_then_read_maps_page() {
        let mut ftl = tiny();
        let lat = LatencyModel::PAPER;
        let t = ftl.write(0, &lat).unwrap();
        assert_eq!(t.as_micros(), 200);
        assert!(ftl.is_mapped(0));
        assert_eq!(ftl.mapped_pages(), 1);
        let t = ftl.read(0, &lat).unwrap();
        assert_eq!(t.as_micros(), 25);
        ftl.check_invariants().unwrap();
    }

    #[test]
    fn overwrite_does_not_grow_mapping() {
        let mut ftl = tiny();
        let lat = LatencyModel::INSTANT;
        for _ in 0..10 {
            ftl.write(3, &lat).unwrap();
        }
        assert_eq!(ftl.mapped_pages(), 1);
        assert_eq!(ftl.stats().host_page_writes, 10);
        ftl.check_invariants().unwrap();
    }

    #[test]
    fn trim_unmaps() {
        let mut ftl = tiny();
        let lat = LatencyModel::INSTANT;
        ftl.write(5, &lat).unwrap();
        ftl.trim(5).unwrap();
        assert!(!ftl.is_mapped(5));
        assert_eq!(ftl.mapped_pages(), 0);
        // Trimming an unmapped page is a no-op.
        ftl.trim(5).unwrap();
        ftl.check_invariants().unwrap();
    }

    #[test]
    fn out_of_range_rejected() {
        let mut ftl = tiny();
        let lat = LatencyModel::INSTANT;
        let exported = ftl.geometry().exported_pages();
        assert!(matches!(
            ftl.write(exported, &lat),
            Err(FtlError::OutOfRange { .. })
        ));
        assert!(matches!(
            ftl.read(u64::MAX, &lat),
            Err(FtlError::OutOfRange { .. })
        ));
        assert!(matches!(
            ftl.trim(exported),
            Err(FtlError::OutOfRange { .. })
        ));
    }

    #[test]
    fn gc_reclaims_overwritten_space() {
        let mut ftl = tiny();
        let lat = LatencyModel::INSTANT;
        // Hammer a small working set far beyond physical capacity: GC must
        // keep the device making progress.
        for i in 0..1000u64 {
            ftl.write(i % 8, &lat).unwrap();
        }
        assert!(ftl.stats().block_erases > 0, "GC never ran");
        assert_eq!(ftl.mapped_pages(), 8);
        ftl.check_invariants().unwrap();
    }

    #[test]
    fn gc_time_is_charged_to_the_triggering_write() {
        let mut ftl = tiny();
        let lat = LatencyModel::PAPER;
        let mut saw_gc_charge = false;
        for i in 0..2000u64 {
            let t = ftl.write(i % 8, &lat).unwrap();
            if t.as_micros() > lat.page_write_us {
                saw_gc_charge = true;
            }
        }
        assert!(saw_gc_charge, "no write ever paid a GC penalty");
    }

    #[test]
    fn device_full_when_all_logical_pages_mapped() {
        let mut ftl = tiny();
        let lat = LatencyModel::INSTANT;
        let exported = ftl.geometry().exported_pages();
        for lpn in 0..exported {
            ftl.write(lpn, &lat).unwrap();
        }
        // Overwrites must still succeed at 100 % utilization thanks to OP.
        for lpn in 0..exported {
            ftl.write(lpn, &lat).unwrap();
        }
        assert!((ftl.utilization() - 1.0).abs() < 1e-12);
        ftl.check_invariants().unwrap();
    }

    #[test]
    fn greedy_picks_min_valid_victim() {
        let mut ftl = tiny();
        let lat = LatencyModel::INSTANT;
        let exported = ftl.geometry().exported_pages();
        // Fill ~60 %, then overwrite one page repeatedly; relocated data
        // should be minimal because greedy always picks emptiest victims.
        let live = exported * 6 / 10;
        for lpn in 0..live {
            ftl.write(lpn, &lat).unwrap();
        }
        for _ in 0..5000 {
            ftl.write(0, &lat).unwrap();
        }
        let s = ftl.stats();
        let ur = s.measured_ur(4).unwrap();
        // Overwriting a single hot page produces near-empty victims.
        assert!(ur < 0.5, "greedy GC should find cold victims, ur = {ur}");
        ftl.check_invariants().unwrap();
    }

    #[test]
    fn hotter_working_sets_wear_faster() {
        let lat = LatencyModel::INSTANT;
        let mut uniform = tiny();
        let mut skewed = tiny();
        let exported = uniform.geometry().exported_pages();
        let live = exported * 7 / 10;
        for lpn in 0..live {
            uniform.write(lpn, &lat).unwrap();
            skewed.write(lpn, &lat).unwrap();
        }
        uniform.stats_mut().reset();
        skewed.stats_mut().reset();
        let mut rng = 12345u64;
        for i in 0..20_000u64 {
            // Uniform overwrites spread across the live set...
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            uniform.write(rng % live, &lat).unwrap();
            // ...skewed overwrites hit only a tenth of it.
            skewed.write(i % (live / 10), &lat).unwrap();
        }
        let ur_uniform = uniform.stats().measured_ur(4).unwrap();
        let ur_skewed = skewed.stats().measured_ur(4).unwrap();
        assert!(
            ur_skewed < ur_uniform,
            "skew must lower victim utilization: skewed {ur_skewed} vs uniform {ur_uniform}"
        );
    }
}

#[cfg(test)]
mod victim_policy_tests {
    use super::*;

    fn run_with(policy: VictimPolicy) -> (u64, u64) {
        let g = Geometry {
            page_size: 4096,
            pages_per_block: 8,
            blocks: 128,
            over_provision_ppt: 100,
        };
        let mut ftl = PageLevelFtl::new(
            g,
            FtlConfig {
                victim_policy: policy,
                ..FtlConfig::default()
            },
        );
        let lat = LatencyModel::INSTANT;
        let live = g.exported_pages() * 7 / 10;
        for lpn in 0..live {
            ftl.write(lpn, &lat).unwrap();
        }
        ftl.stats_mut().reset();
        // Skewed overwrites: 90 % of writes to 10 % of pages.
        let mut x = 0xABCDEFu64;
        for _ in 0..30_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = x >> 11;
            let lpn = if r % 10 < 9 {
                r % (live / 10).max(1)
            } else {
                r % live
            };
            ftl.write(lpn, &lat).unwrap();
        }
        ftl.check_invariants().unwrap();
        (ftl.stats().block_erases, ftl.stats().gc_page_moves)
    }

    #[test]
    fn greedy_beats_fifo_on_skewed_workloads() {
        // The wear model (Eq. 1) assumes greedy reclamation; FIFO ignores
        // validity and must relocate at least as much live data.
        let (greedy_erases, greedy_moves) = run_with(VictimPolicy::Greedy);
        let (fifo_erases, fifo_moves) = run_with(VictimPolicy::Fifo);
        assert!(
            fifo_moves >= greedy_moves,
            "FIFO should relocate more: {fifo_moves} vs {greedy_moves}"
        );
        assert!(
            fifo_erases >= greedy_erases,
            "FIFO should erase at least as much: {fifo_erases} vs {greedy_erases}"
        );
    }

    #[test]
    fn fifo_also_preserves_invariants_under_pressure() {
        let (erases, _) = run_with(VictimPolicy::Fifo);
        assert!(erases > 0, "GC must have run");
    }
}

#[cfg(test)]
mod cost_benefit_tests {
    use super::*;

    #[test]
    fn cost_benefit_sustains_pressure_and_keeps_invariants() {
        let g = Geometry {
            page_size: 4096,
            pages_per_block: 8,
            blocks: 64,
            over_provision_ppt: 100,
        };
        let mut ftl = PageLevelFtl::new(
            g,
            FtlConfig {
                victim_policy: VictimPolicy::CostBenefit,
                ..FtlConfig::default()
            },
        );
        let lat = LatencyModel::INSTANT;
        let live = g.exported_pages() * 7 / 10;
        for lpn in 0..live {
            ftl.write(lpn, &lat).unwrap();
        }
        for i in 0..20_000u64 {
            ftl.write(i % live, &lat).unwrap();
        }
        assert!(ftl.stats().block_erases > 0);
        ftl.check_invariants().unwrap();
    }

    #[test]
    fn cost_benefit_prefers_old_cold_blocks_over_slightly_emptier_young_ones() {
        // Construct candidates indirectly: after heavy churn the policy
        // must still reclaim, and on a skewed workload its relocation
        // volume stays in the same ballpark as greedy's (both avoid
        // fully-valid victims).
        let g = Geometry {
            page_size: 4096,
            pages_per_block: 8,
            blocks: 96,
            over_provision_ppt: 100,
        };
        let run = |policy: VictimPolicy| -> u64 {
            let mut ftl = PageLevelFtl::new(
                g,
                FtlConfig {
                    victim_policy: policy,
                    ..FtlConfig::default()
                },
            );
            let lat = LatencyModel::INSTANT;
            let live = g.exported_pages() * 7 / 10;
            for lpn in 0..live {
                ftl.write(lpn, &lat).unwrap();
            }
            let mut x = 7u64;
            for _ in 0..25_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let r = x >> 9;
                let lpn = if r % 10 < 9 {
                    r % (live / 10).max(1)
                } else {
                    r % live
                };
                ftl.write(lpn, &lat).unwrap();
            }
            ftl.check_invariants().unwrap();
            ftl.stats().gc_page_moves
        };
        let greedy = run(VictimPolicy::Greedy);
        let cb = run(VictimPolicy::CostBenefit);
        let fifo = run(VictimPolicy::Fifo);
        assert!(
            cb <= fifo,
            "cost-benefit ({cb}) must not relocate more than FIFO ({fifo})"
        );
        // Greedy minimizes instantaneous relocation; cost-benefit may pay
        // somewhat more but stays within a small factor.
        assert!(
            cb <= greedy.max(1) * 10,
            "cost-benefit ({cb}) wildly worse than greedy ({greedy})"
        );
    }
}

#[cfg(test)]
mod wear_leveling_tests {
    use super::*;
    use crate::wear_leveling::{wear_spread, WearLevelConfig};

    fn run(config: WearLevelConfig) -> Vec<u64> {
        let g = Geometry {
            page_size: 4096,
            pages_per_block: 8,
            blocks: 64,
            over_provision_ppt: 100,
        };
        let mut ftl = PageLevelFtl::new(
            g,
            FtlConfig {
                wear_leveling: config,
                ..FtlConfig::default()
            },
        );
        let lat = LatencyModel::INSTANT;
        let live = g.exported_pages() * 7 / 10;
        // Cold bottom half written once; hot top tenth hammered.
        for lpn in 0..live {
            ftl.write(lpn, &lat).unwrap();
        }
        let hot = live / 10;
        for i in 0..60_000u64 {
            ftl.write(live - 1 - (i % hot), &lat).unwrap();
        }
        ftl.check_invariants().unwrap();
        ftl.block_erase_counts()
    }

    #[test]
    fn static_leveling_narrows_block_wear_spread() {
        let off = run(WearLevelConfig::OFF);
        let on = run(WearLevelConfig {
            dynamic: true,
            static_threshold: 8,
        });
        let s_off = wear_spread(&off);
        let s_on = wear_spread(&on);
        // With cold data pinned in place and leveling off, the least-worn
        // blocks stay at zero while hot blocks churn; leveling must close
        // that gap.
        assert!(
            (s_on.max - s_on.min) < (s_off.max - s_off.min),
            "leveling should narrow spread: off {s_off:?} vs on {s_on:?}"
        );
    }

    #[test]
    fn leveling_preserves_data_and_invariants() {
        // Same workload under all three settings: mapped data identical.
        for cfg in [
            WearLevelConfig::OFF,
            WearLevelConfig::DEFAULT,
            WearLevelConfig {
                dynamic: true,
                static_threshold: 4,
            },
        ] {
            let counts = run(cfg);
            assert!(counts.iter().sum::<u64>() > 0, "{cfg:?} never erased");
        }
    }
}

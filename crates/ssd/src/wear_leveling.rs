//! Device-internal wear leveling.
//!
//! EDM balances wear *across* SSDs; inside each SSD the FTL must spread
//! erases across blocks, or a hot block hits its P/E limit while its
//! neighbours are fresh. The paper (and our lifetime projection in
//! `edm-core`) assumes the device does this. Two standard mechanisms:
//!
//! * **Dynamic**: when the GC or the host needs a fresh block, prefer the
//!   *least-worn* free block (implemented here as a wear-ordered free
//!   pool).
//! * **Static**: when the erase-count spread exceeds a threshold, relocate
//!   long-lived cold data from the least-worn blocks so they re-enter
//!   circulation (hooked into the GC path by the FTL).
//!
//! This module provides the bookkeeping: a wear-ordered free pool and the
//! spread trigger.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Wear-leveling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearLevelConfig {
    /// Pick the least-worn free block instead of FIFO.
    pub dynamic: bool,
    /// Trigger static leveling when `max_erase - min_erase` over all
    /// blocks exceeds this. 0 disables static leveling.
    pub static_threshold: u64,
}

impl WearLevelConfig {
    /// Leveling disabled entirely (the original FIFO free pool).
    pub const OFF: WearLevelConfig = WearLevelConfig {
        dynamic: false,
        static_threshold: 0,
    };

    /// Typical production setting: dynamic leveling plus static leveling
    /// at a spread of 32 erases.
    pub const DEFAULT: WearLevelConfig = WearLevelConfig {
        dynamic: true,
        static_threshold: 32,
    };
}

impl Default for WearLevelConfig {
    fn default() -> Self {
        WearLevelConfig::DEFAULT
    }
}

/// A free-block pool that can hand out blocks FIFO (leveling off) or
/// least-worn-first (dynamic leveling).
#[derive(Debug, Clone)]
pub struct FreePool {
    /// FIFO order (always maintained; cheap).
    fifo: std::collections::VecDeque<u32>,
    /// Wear order: (erase_count, block). Maintained only when dynamic
    /// leveling is on.
    by_wear: BTreeSet<(u64, u32)>,
    dynamic: bool,
}

impl FreePool {
    pub fn new(blocks: impl IntoIterator<Item = u32>, dynamic: bool) -> Self {
        let fifo: std::collections::VecDeque<u32> = blocks.into_iter().collect();
        let by_wear = if dynamic {
            fifo.iter().map(|&b| (0u64, b)).collect()
        } else {
            BTreeSet::new()
        };
        FreePool {
            fifo,
            by_wear,
            dynamic,
        }
    }

    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Returns a free block: least-worn first under dynamic leveling,
    /// FIFO otherwise.
    pub fn pop(&mut self) -> Option<u32> {
        if self.dynamic {
            let &(wear, block) = self.by_wear.iter().next()?;
            self.by_wear.remove(&(wear, block));
            let pos = self
                .fifo
                .iter()
                .position(|&b| b == block)
                .expect("pools agree");
            self.fifo.remove(pos);
            Some(block)
        } else {
            self.fifo.pop_front()
        }
    }

    /// Returns an erased block to the pool with its current wear.
    pub fn push(&mut self, block: u32, erase_count: u64) {
        self.fifo.push_back(block);
        if self.dynamic {
            self.by_wear.insert((erase_count, block));
        }
    }

    pub fn contains(&self, block: u32) -> bool {
        self.fifo.contains(&block)
    }

    /// Iterates over the pool's blocks (FIFO order).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.fifo.iter().copied()
    }
}

/// Static-leveling trigger: true when the per-block erase spread warrants
/// relocating cold data off the least-worn blocks.
pub fn static_leveling_due(erase_counts: &[u64], threshold: u64) -> bool {
    if threshold == 0 || erase_counts.is_empty() {
        return false;
    }
    let max = erase_counts.iter().copied().max().expect("non-empty");
    let min = erase_counts.iter().copied().min().expect("non-empty");
    max - min > threshold
}

/// Spread statistics of per-block erase counts (for reporting and tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WearSpread {
    pub min: u64,
    pub max: u64,
    pub mean: f64,
}

pub fn wear_spread(erase_counts: &[u64]) -> WearSpread {
    if erase_counts.is_empty() {
        return WearSpread {
            min: 0,
            max: 0,
            mean: 0.0,
        };
    }
    WearSpread {
        min: erase_counts.iter().copied().min().expect("non-empty"),
        max: erase_counts.iter().copied().max().expect("non-empty"),
        mean: erase_counts.iter().sum::<u64>() as f64 / erase_counts.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_pool_preserves_order() {
        let mut p = FreePool::new([3, 1, 2], false);
        assert_eq!(p.len(), 3);
        assert_eq!(p.pop(), Some(3));
        assert_eq!(p.pop(), Some(1));
        p.push(9, 100);
        assert_eq!(p.pop(), Some(2));
        assert_eq!(p.pop(), Some(9));
        assert!(p.pop().is_none());
    }

    #[test]
    fn dynamic_pool_hands_out_least_worn() {
        let mut p = FreePool::new([], true);
        p.push(1, 50);
        p.push(2, 3);
        p.push(3, 10);
        assert_eq!(p.pop(), Some(2), "least worn first");
        assert_eq!(p.pop(), Some(3));
        assert_eq!(p.pop(), Some(1));
    }

    #[test]
    fn dynamic_pool_ties_break_by_block_id() {
        let mut p = FreePool::new([], true);
        p.push(7, 4);
        p.push(2, 4);
        assert_eq!(p.pop(), Some(2));
        assert_eq!(p.pop(), Some(7));
    }

    #[test]
    fn static_trigger_fires_on_wide_spread() {
        assert!(!static_leveling_due(&[5, 6, 7], 32));
        assert!(static_leveling_due(&[0, 40], 32));
        assert!(!static_leveling_due(&[0, 40], 0), "0 disables");
        assert!(!static_leveling_due(&[], 32));
    }

    #[test]
    fn spread_statistics() {
        let s = wear_spread(&[2, 8, 5]);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(wear_spread(&[]).max, 0);
    }

    #[test]
    fn contains_tracks_membership() {
        let mut p = FreePool::new([1], true);
        assert!(p.contains(1));
        p.pop();
        assert!(!p.contains(1));
    }
}

//! Device-internal wear leveling.
//!
//! EDM balances wear *across* SSDs; inside each SSD the FTL must spread
//! erases across blocks, or a hot block hits its P/E limit while its
//! neighbours are fresh. The paper (and our lifetime projection in
//! `edm-core`) assumes the device does this. Two standard mechanisms:
//!
//! * **Dynamic**: when the GC or the host needs a fresh block, prefer the
//!   *least-worn* free block (implemented here as a wear-ordered free
//!   pool).
//! * **Static**: when the erase-count spread exceeds a threshold, relocate
//!   long-lived cold data from the least-worn blocks so they re-enter
//!   circulation (hooked into the GC path by the FTL).
//!
//! This module provides the bookkeeping: a wear-ordered free pool and the
//! spread trigger.

use std::collections::BTreeSet;

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

/// Wear-leveling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearLevelConfig {
    /// Pick the least-worn free block instead of FIFO.
    pub dynamic: bool,
    /// Trigger static leveling when `max_erase - min_erase` over all
    /// blocks exceeds this. 0 disables static leveling.
    pub static_threshold: u64,
}

impl WearLevelConfig {
    /// Leveling disabled entirely (the original FIFO free pool).
    pub const OFF: WearLevelConfig = WearLevelConfig {
        dynamic: false,
        static_threshold: 0,
    };

    /// Typical production setting: dynamic leveling plus static leveling
    /// at a spread of 32 erases.
    pub const DEFAULT: WearLevelConfig = WearLevelConfig {
        dynamic: true,
        static_threshold: 32,
    };
}

impl Default for WearLevelConfig {
    fn default() -> Self {
        WearLevelConfig::DEFAULT
    }
}

/// A free-block pool that can hand out blocks FIFO (leveling off) or
/// least-worn-first (dynamic leveling).
///
/// Exactly one of the two orderings is maintained, chosen at construction:
/// keeping both in lock-step forced the dynamic `pop` to scan the FIFO
/// deque for the block it had just taken out of the wear order, an O(n)
/// removal on the write hot path.
#[derive(Debug, Clone)]
pub struct FreePool {
    /// FIFO order; populated only when dynamic leveling is off.
    fifo: std::collections::VecDeque<u32>,
    /// Wear order: (erase_count, block); populated only under dynamic
    /// leveling.
    by_wear: BTreeSet<(u64, u32)>,
    dynamic: bool,
}

impl FreePool {
    pub fn new(blocks: impl IntoIterator<Item = u32>, dynamic: bool) -> Self {
        let mut pool = FreePool {
            fifo: std::collections::VecDeque::new(),
            by_wear: BTreeSet::new(),
            dynamic,
        };
        for b in blocks {
            pool.push(b, 0);
        }
        pool
    }

    pub fn len(&self) -> usize {
        if self.dynamic {
            self.by_wear.len()
        } else {
            self.fifo.len()
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a free block: least-worn first under dynamic leveling
    /// (ties by block id), FIFO otherwise.
    pub fn pop(&mut self) -> Option<u32> {
        if self.dynamic {
            let first = *self.by_wear.iter().next()?;
            self.by_wear.remove(&first);
            Some(first.1)
        } else {
            self.fifo.pop_front()
        }
    }

    /// Returns an erased block to the pool with its current wear.
    pub fn push(&mut self, block: u32, erase_count: u64) {
        if self.dynamic {
            self.by_wear.insert((erase_count, block));
        } else {
            self.fifo.push_back(block);
        }
    }

    pub fn contains(&self, block: u32) -> bool {
        if self.dynamic {
            self.by_wear.iter().any(|&(_, b)| b == block)
        } else {
            self.fifo.contains(&block)
        }
    }

    /// Iterates over the pool's blocks (FIFO or wear order, depending on
    /// mode; one of the two sources is always empty).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.fifo
            .iter()
            .copied()
            .chain(self.by_wear.iter().map(|&(_, b)| b))
    }
}

/// Incremental erase-count spread: a histogram over counts with cached
/// min/max, updated in O(1) per erase. Replaces scanning every block's
/// erase count on each GC collection to evaluate the static-leveling
/// trigger.
#[derive(Debug, Clone)]
pub struct SpreadTracker {
    /// `hist[c]` = number of blocks whose erase count is `c`.
    hist: Vec<u64>,
    min: u64,
    max: u64,
}

impl SpreadTracker {
    /// All `blocks` start at erase count 0.
    pub fn new(blocks: u32) -> Self {
        SpreadTracker {
            hist: vec![blocks as u64],
            min: 0,
            max: 0,
        }
    }

    /// Records one erase of a block whose count was `old` (now `old + 1`).
    pub fn record_erase(&mut self, old: u64) {
        let new = old + 1;
        if self.hist.len() as u64 <= new {
            self.hist.resize(new as usize + 1, 0);
        }
        self.hist[old as usize] -= 1;
        self.hist[new as usize] += 1;
        if new > self.max {
            self.max = new;
        }
        // The bucket at `new` is non-empty, so this terminates at or
        // before `max`.
        while self.hist[self.min as usize] == 0 {
            self.min += 1;
        }
    }

    pub fn min(&self) -> u64 {
        self.min
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Same trigger as [`static_leveling_due`], from the cached extremes.
    pub fn due(&self, threshold: u64) -> bool {
        threshold != 0 && self.max - self.min > threshold
    }
}

impl Snapshot for WearLevelConfig {
    fn save(&self, w: &mut SnapWriter) {
        w.put_bool(self.dynamic);
        w.put_u64(self.static_threshold);
    }
    fn load(r: &mut SnapReader) -> Self {
        WearLevelConfig {
            dynamic: r.take_bool(),
            static_threshold: r.take_u64(),
        }
    }
}

impl Snapshot for FreePool {
    /// FIFO order is behaviour-relevant, so the deque is serialized as-is;
    /// the wear-ordered set round-trips through its sorted iteration.
    fn save(&self, w: &mut SnapWriter) {
        self.fifo.save(w);
        self.by_wear.save(w);
        w.put_bool(self.dynamic);
    }
    fn load(r: &mut SnapReader) -> Self {
        let fifo = std::collections::VecDeque::<u32>::load(r);
        let by_wear = BTreeSet::<(u64, u32)>::load(r);
        let dynamic = r.take_bool();
        if dynamic && !fifo.is_empty() || !dynamic && !by_wear.is_empty() {
            r.corrupt("free pool holds blocks in the inactive ordering");
        }
        FreePool {
            fifo,
            by_wear,
            dynamic,
        }
    }
}

impl Snapshot for SpreadTracker {
    fn save(&self, w: &mut SnapWriter) {
        self.hist.save(w);
        w.put_u64(self.min);
        w.put_u64(self.max);
    }
    fn load(r: &mut SnapReader) -> Self {
        let hist = Vec::<u64>::load(r);
        let min = r.take_u64();
        let max = r.take_u64();
        if min > max || max as usize >= hist.len().max(1) {
            r.corrupt("spread tracker extremes out of histogram range");
        }
        SpreadTracker { hist, min, max }
    }
}

/// Static-leveling trigger: true when the per-block erase spread warrants
/// relocating cold data off the least-worn blocks.
pub fn static_leveling_due(erase_counts: &[u64], threshold: u64) -> bool {
    if threshold == 0 || erase_counts.is_empty() {
        return false;
    }
    // edm-audit: allow(panic.expect, "geometry validation guarantees at least one block")
    let max = erase_counts.iter().copied().max().expect("non-empty");
    // edm-audit: allow(panic.expect, "geometry validation guarantees at least one block")
    let min = erase_counts.iter().copied().min().expect("non-empty");
    max - min > threshold
}

/// Spread statistics of per-block erase counts (for reporting and tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WearSpread {
    pub min: u64,
    pub max: u64,
    pub mean: f64,
}

pub fn wear_spread(erase_counts: &[u64]) -> WearSpread {
    if erase_counts.is_empty() {
        return WearSpread {
            min: 0,
            max: 0,
            mean: 0.0,
        };
    }
    WearSpread {
        // edm-audit: allow(panic.expect, "geometry validation guarantees at least one block")
        min: erase_counts.iter().copied().min().expect("non-empty"),
        // edm-audit: allow(panic.expect, "geometry validation guarantees at least one block")
        max: erase_counts.iter().copied().max().expect("non-empty"),
        mean: erase_counts.iter().sum::<u64>() as f64 / erase_counts.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_pool_preserves_order() {
        let mut p = FreePool::new([3, 1, 2], false);
        assert_eq!(p.len(), 3);
        assert_eq!(p.pop(), Some(3));
        assert_eq!(p.pop(), Some(1));
        p.push(9, 100);
        assert_eq!(p.pop(), Some(2));
        assert_eq!(p.pop(), Some(9));
        assert!(p.pop().is_none());
    }

    #[test]
    fn dynamic_pool_hands_out_least_worn() {
        let mut p = FreePool::new([], true);
        p.push(1, 50);
        p.push(2, 3);
        p.push(3, 10);
        assert_eq!(p.pop(), Some(2), "least worn first");
        assert_eq!(p.pop(), Some(3));
        assert_eq!(p.pop(), Some(1));
    }

    #[test]
    fn dynamic_pool_ties_break_by_block_id() {
        let mut p = FreePool::new([], true);
        p.push(7, 4);
        p.push(2, 4);
        assert_eq!(p.pop(), Some(2));
        assert_eq!(p.pop(), Some(7));
    }

    #[test]
    fn static_trigger_fires_on_wide_spread() {
        assert!(!static_leveling_due(&[5, 6, 7], 32));
        assert!(static_leveling_due(&[0, 40], 32));
        assert!(!static_leveling_due(&[0, 40], 0), "0 disables");
        assert!(!static_leveling_due(&[], 32));
    }

    #[test]
    fn spread_statistics() {
        let s = wear_spread(&[2, 8, 5]);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(wear_spread(&[]).max, 0);
    }

    #[test]
    fn contains_tracks_membership() {
        let mut p = FreePool::new([1], true);
        assert!(p.contains(1));
        p.pop();
        assert!(!p.contains(1));
    }

    #[test]
    fn spread_tracker_matches_full_scan() {
        // Drive both the tracker and a brute-force recount with the same
        // erase sequence; min/max/due must agree at every step.
        let mut counts = vec![0u64; 8];
        let mut t = SpreadTracker::new(8);
        let mut x = 42u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33) as usize % counts.len();
            t.record_erase(counts[b]);
            counts[b] += 1;
            let min = *counts.iter().min().unwrap();
            let max = *counts.iter().max().unwrap();
            assert_eq!(t.min(), min);
            assert_eq!(t.max(), max);
            for threshold in [0, 1, 8, 32] {
                assert_eq!(t.due(threshold), static_leveling_due(&counts, threshold));
            }
        }
    }

    #[test]
    fn spread_tracker_initial_state() {
        let t = SpreadTracker::new(16);
        assert_eq!(t.min(), 0);
        assert_eq!(t.max(), 0);
        assert!(!t.due(1));
        assert!(!t.due(0));
    }
}

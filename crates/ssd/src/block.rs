//! Per-block bookkeeping for the flash translation layer.
//!
//! A block is the erase unit (§I): pages inside it are programmed in order
//! (NAND constraint), individually invalidated by out-of-place updates,
//! and reclaimed all at once by an erase.

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

/// State of one physical page inside a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageState {
    /// Erased and programmable.
    Free,
    /// Programmed and still mapped by some logical page.
    Valid,
    /// Programmed but superseded by a newer copy elsewhere; reclaimable.
    Invalid,
}

/// One physical erase block: page states plus wear bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Block {
    pages: Vec<PageState>,
    /// Next page to program (NAND programs pages sequentially in a block).
    write_ptr: u32,
    valid: u32,
    erase_count: u64,
}

impl Block {
    pub fn new(pages_per_block: u32) -> Self {
        Block {
            pages: vec![PageState::Free; pages_per_block as usize],
            write_ptr: 0,
            valid: 0,
            erase_count: 0,
        }
    }

    pub fn pages_per_block(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Number of pages still mapped (live data the GC must relocate).
    pub fn valid_pages(&self) -> u32 {
        self.valid
    }

    /// Number of pages not yet programmed since the last erase.
    pub fn free_pages(&self) -> u32 {
        self.pages_per_block() - self.write_ptr
    }

    /// Number of reclaimable (superseded) pages.
    pub fn invalid_pages(&self) -> u32 {
        self.write_ptr - self.valid
    }

    /// True once every page has been programmed.
    pub fn is_full(&self) -> bool {
        self.write_ptr == self.pages_per_block()
    }

    /// True if no page has been programmed since the last erase.
    pub fn is_erased(&self) -> bool {
        self.write_ptr == 0
    }

    pub fn erase_count(&self) -> u64 {
        self.erase_count
    }

    pub fn state(&self, page: u32) -> PageState {
        self.pages[page as usize]
    }

    /// Programs the next free page, returning its in-block index.
    ///
    /// # Panics
    /// Panics if the block is full — the FTL must check `is_full` first.
    pub fn program(&mut self) -> u32 {
        assert!(!self.is_full(), "programming a full block");
        let idx = self.write_ptr;
        self.pages[idx as usize] = PageState::Valid;
        self.write_ptr += 1;
        self.valid += 1;
        idx
    }

    /// Marks a previously valid page as superseded.
    ///
    /// # Panics
    /// Panics if the page was not valid — invalidating a free or already
    /// invalid page indicates FTL mapping corruption.
    pub fn invalidate(&mut self, page: u32) {
        let slot = &mut self.pages[page as usize];
        assert_eq!(*slot, PageState::Valid, "invalidating non-valid page");
        *slot = PageState::Invalid;
        self.valid -= 1;
    }

    /// Erases the block: all pages become free, wear counter increments.
    ///
    /// # Panics
    /// Panics if any page is still valid — the GC must relocate live data
    /// before erasing.
    pub fn erase(&mut self) {
        assert_eq!(self.valid, 0, "erasing a block with live pages");
        self.pages.fill(PageState::Free);
        self.write_ptr = 0;
        self.erase_count += 1;
    }

    /// In-block indices of the currently valid pages (for GC relocation).
    pub fn valid_page_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.pages
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == PageState::Valid)
            .map(|(i, _)| i as u32)
    }

    /// First valid page at index `from` or later, if any. Lets the GC walk
    /// a victim's live pages with a cursor instead of collecting them —
    /// states may change (invalidations) between steps without the cursor
    /// going stale, because relocation only ever invalidates pages it has
    /// already passed.
    pub fn next_valid_page(&self, from: u32) -> Option<u32> {
        (from..self.pages_per_block()).find(|&i| self.pages[i as usize] == PageState::Valid)
    }
}

impl Snapshot for PageState {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            PageState::Free => 0,
            PageState::Valid => 1,
            PageState::Invalid => 2,
        });
    }
    fn load(r: &mut SnapReader) -> Self {
        match r.take_u8() {
            0 => PageState::Free,
            1 => PageState::Valid,
            2 => PageState::Invalid,
            _ => {
                r.corrupt("PageState tag");
                PageState::Free
            }
        }
    }
}

impl Snapshot for Block {
    fn save(&self, w: &mut SnapWriter) {
        self.pages.save(w);
        w.put_u32(self.write_ptr);
        w.put_u32(self.valid);
        w.put_u64(self.erase_count);
    }
    fn load(r: &mut SnapReader) -> Self {
        let pages = Vec::<PageState>::load(r);
        let write_ptr = r.take_u32();
        let valid = r.take_u32();
        let erase_count = r.take_u64();
        let counted = pages.iter().filter(|p| **p == PageState::Valid).count() as u32;
        if counted != valid || write_ptr as usize > pages.len() {
            r.corrupt("block page-state bookkeeping disagrees with counters");
        }
        Block {
            pages,
            write_ptr,
            valid,
            erase_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_all_free() {
        let b = Block::new(32);
        assert_eq!(b.free_pages(), 32);
        assert_eq!(b.valid_pages(), 0);
        assert_eq!(b.invalid_pages(), 0);
        assert!(b.is_erased());
        assert!(!b.is_full());
    }

    #[test]
    fn program_fills_sequentially() {
        let mut b = Block::new(4);
        assert_eq!(b.program(), 0);
        assert_eq!(b.program(), 1);
        assert_eq!(b.valid_pages(), 2);
        assert_eq!(b.free_pages(), 2);
        assert_eq!(b.state(0), PageState::Valid);
        assert_eq!(b.state(2), PageState::Free);
    }

    #[test]
    fn invalidate_tracks_counts() {
        let mut b = Block::new(4);
        b.program();
        b.program();
        b.invalidate(0);
        assert_eq!(b.valid_pages(), 1);
        assert_eq!(b.invalid_pages(), 1);
        assert_eq!(b.state(0), PageState::Invalid);
    }

    #[test]
    #[should_panic(expected = "invalidating non-valid page")]
    fn double_invalidate_panics() {
        let mut b = Block::new(4);
        b.program();
        b.invalidate(0);
        b.invalidate(0);
    }

    #[test]
    #[should_panic(expected = "programming a full block")]
    fn program_full_block_panics() {
        let mut b = Block::new(2);
        b.program();
        b.program();
        b.program();
    }

    #[test]
    fn erase_resets_and_counts_wear() {
        let mut b = Block::new(2);
        b.program();
        b.program();
        b.invalidate(0);
        b.invalidate(1);
        b.erase();
        assert!(b.is_erased());
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.free_pages(), 2);
        b.program();
        assert_eq!(b.valid_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "erasing a block with live pages")]
    fn erase_with_live_data_panics() {
        let mut b = Block::new(2);
        b.program();
        b.erase();
    }

    #[test]
    fn valid_page_indices_skips_invalid() {
        let mut b = Block::new(4);
        b.program();
        b.program();
        b.program();
        b.invalidate(1);
        let idx: Vec<u32> = b.valid_page_indices().collect();
        assert_eq!(idx, vec![0, 2]);
    }

    #[test]
    fn next_valid_page_walks_like_the_index_list() {
        let mut b = Block::new(6);
        for _ in 0..5 {
            b.program();
        }
        b.invalidate(0);
        b.invalidate(3);
        let mut cursor = Vec::new();
        let mut from = 0;
        while let Some(p) = b.next_valid_page(from) {
            cursor.push(p);
            from = p + 1;
        }
        let listed: Vec<u32> = b.valid_page_indices().collect();
        assert_eq!(cursor, listed);
        assert_eq!(cursor, vec![1, 2, 4]);
        assert_eq!(b.next_valid_page(5), None);
    }
}

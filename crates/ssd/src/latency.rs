//! Flash operation latency model.
//!
//! The paper (§IV) emulates the SSD's I/O delay with fixed per-operation
//! latencies: 25 µs to read a page, 200 µs to program a page, and 2 ms to
//! erase a block. Every operation on [`crate::Ssd`] returns the simulated
//! device time it consumed, built from these constants.

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

/// Simulated device time, in microseconds.
///
/// A thin newtype so that callers cannot confuse device time with other
/// `u64` quantities (page numbers, byte counts, ...). Device times add up.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DeviceTime(pub u64);

impl DeviceTime {
    pub const ZERO: DeviceTime = DeviceTime(0);

    pub fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    pub fn saturating_sub(self, rhs: DeviceTime) -> DeviceTime {
        DeviceTime(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Add for DeviceTime {
    type Output = DeviceTime;
    fn add(self, rhs: DeviceTime) -> DeviceTime {
        DeviceTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for DeviceTime {
    fn add_assign(&mut self, rhs: DeviceTime) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<u64> for DeviceTime {
    type Output = DeviceTime;
    fn mul(self, rhs: u64) -> DeviceTime {
        DeviceTime(self.0 * rhs)
    }
}

impl std::iter::Sum for DeviceTime {
    fn sum<I: Iterator<Item = DeviceTime>>(iter: I) -> DeviceTime {
        iter.fold(DeviceTime::ZERO, |a, b| a + b)
    }
}

/// Per-operation latencies of the flash device, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Time to read one page.
    pub page_read_us: u64,
    /// Time to program one page.
    pub page_write_us: u64,
    /// Time to erase one block.
    pub block_erase_us: u64,
}

impl LatencyModel {
    /// The paper's configuration: 25 µs read, 200 µs write, 2 ms erase.
    pub const PAPER: LatencyModel = LatencyModel {
        page_read_us: 25,
        page_write_us: 200,
        block_erase_us: 2_000,
    };

    /// A zero-latency model, useful for pure wear-accounting experiments
    /// where time does not matter (e.g. the Fig. 3 uᵣ sweep).
    pub const INSTANT: LatencyModel = LatencyModel {
        page_read_us: 0,
        page_write_us: 0,
        block_erase_us: 0,
    };

    pub fn read_pages(&self, n: u64) -> DeviceTime {
        DeviceTime(self.page_read_us * n)
    }

    pub fn write_pages(&self, n: u64) -> DeviceTime {
        DeviceTime(self.page_write_us * n)
    }

    pub fn erase_blocks(&self, n: u64) -> DeviceTime {
        DeviceTime(self.block_erase_us * n)
    }

    /// Time for one GC pass that relocates `valid` pages and erases one
    /// block: read + program each valid page, then erase.
    pub fn gc_pass(&self, valid: u64) -> DeviceTime {
        self.read_pages(valid) + self.write_pages(valid) + self.erase_blocks(1)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::PAPER
    }
}

impl Snapshot for DeviceTime {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn load(r: &mut SnapReader) -> Self {
        DeviceTime(r.take_u64())
    }
}

impl Snapshot for LatencyModel {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.page_read_us);
        w.put_u64(self.page_write_us);
        w.put_u64(self.block_erase_us);
    }
    fn load(r: &mut SnapReader) -> Self {
        LatencyModel {
            page_read_us: r.take_u64(),
            page_write_us: r.take_u64(),
            block_erase_us: r.take_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latencies_match_section_iv() {
        let m = LatencyModel::PAPER;
        assert_eq!(m.page_read_us, 25);
        assert_eq!(m.page_write_us, 200);
        assert_eq!(m.block_erase_us, 2_000);
    }

    #[test]
    fn device_time_arithmetic() {
        let t = DeviceTime(10) + DeviceTime(5);
        assert_eq!(t, DeviceTime(15));
        assert_eq!(t * 3, DeviceTime(45));
        assert_eq!(t.saturating_sub(DeviceTime(20)), DeviceTime::ZERO);
        let sum: DeviceTime = [DeviceTime(1), DeviceTime(2), DeviceTime(3)]
            .into_iter()
            .sum();
        assert_eq!(sum, DeviceTime(6));
        assert!((DeviceTime(2_500_000).as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn gc_pass_accounts_for_relocations_and_erase() {
        let m = LatencyModel::PAPER;
        // 5 valid pages: 5 reads + 5 writes + 1 erase.
        assert_eq!(m.gc_pass(5).as_micros(), 5 * 25 + 5 * 200 + 2_000);
        // Empty victim: only the erase.
        assert_eq!(m.gc_pass(0).as_micros(), 2_000);
    }

    #[test]
    fn instant_model_is_free() {
        let m = LatencyModel::INSTANT;
        assert_eq!(m.gc_pass(100), DeviceTime::ZERO);
        assert_eq!(m.write_pages(1000), DeviceTime::ZERO);
    }
}

#![forbid(unsafe_code)]
//! # edm-ssd — NAND flash SSD model
//!
//! The flash substrate of the EDM reproduction (Ou et al., *EDM: an
//! Endurance-aware Data Migration Scheme for Load Balancing in SSD Storage
//! Clusters*, IPDPS 2014). The paper runs its cluster on a flashsim-derived
//! simulator with a page-level FTL (§IV); this crate is a from-scratch
//! implementation of that substrate:
//!
//! * [`Geometry`] — 4 KB pages, 128 KB blocks, over-provisioned raw space;
//! * [`Block`] — the erase unit, with sequential programming and per-block
//!   wear counters;
//! * [`PageLevelFtl`] — out-of-place updates with greedy garbage
//!   collection (victim = fewest valid pages);
//! * [`LatencyModel`] — 25 µs page read / 200 µs page program / 2 ms block
//!   erase, the delays the paper injects;
//! * [`WearStats`] — host writes `Wc`, block erases `Ec`, GC relocations,
//!   and the measured victim valid-page ratio uᵣ that Fig. 3 compares
//!   against the analytic wear model;
//! * [`Ssd`] — byte-granular façade plus the steady-state warm-up of §IV.
//!
//! Every mutating operation returns the [`DeviceTime`] it consumed so the
//! cluster simulator can charge GC stalls to the request that triggered
//! them — the blocking behaviour §II identifies as the source of load
//! imbalance.
//!
//! ```
//! use edm_ssd::{Geometry, LatencyModel, Ssd};
//!
//! let mut ssd = Ssd::new(
//!     Geometry::for_exported_capacity(16 * 1024 * 1024),
//!     LatencyModel::PAPER,
//! );
//! let t = ssd.write(0, 8192).unwrap(); // two 4 KB pages
//! assert_eq!(t.as_micros(), 400);
//! assert_eq!(ssd.wear().host_page_writes, 2);
//! ```

pub mod block;
pub mod ftl;
pub mod geometry;
pub mod latency;
pub mod ssd;
pub mod victim;
pub mod wear;
pub mod wear_leveling;

pub use block::{Block, PageState};
pub use ftl::{FtlConfig, FtlError, PageLevelFtl, PhysPage, VictimPolicy};
pub use geometry::Geometry;
pub use latency::{DeviceTime, LatencyModel};
pub use ssd::{Ssd, SsdSnapshot};
pub use victim::VictimBuckets;
pub use wear::WearStats;
pub use wear_leveling::{FreePool, SpreadTracker, WearLevelConfig};

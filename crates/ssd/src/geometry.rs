//! Physical geometry of the simulated NAND flash device.
//!
//! The paper (§IV) configures the SSD with 4 KB pages and 128 KB blocks,
//! i.e. 32 pages per block. Reads and writes operate on pages; erases
//! operate on whole blocks ("out-of-place update", §I).

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

/// Default page size used in the paper: 4 KB.
pub const DEFAULT_PAGE_SIZE: u64 = 4 * 1024;
/// Default block size used in the paper: 128 KB (32 pages).
pub const DEFAULT_BLOCK_SIZE: u64 = 128 * 1024;

/// Static geometry of a flash device.
///
/// The device exposes `exported_pages()` logical pages to the host; the
/// remainder of the raw capacity is over-provisioned space that the
/// garbage collector uses as headroom (§I, §II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Bytes per flash page (unit of read/program).
    pub page_size: u64,
    /// Pages per erase block (`Np` in the paper's wear model, Eq. 1).
    pub pages_per_block: u32,
    /// Total number of physical erase blocks.
    pub blocks: u32,
    /// Fraction of raw capacity hidden from the host as over-provisioning,
    /// in parts-per-thousand (e.g. `80` = 8 %).
    pub over_provision_ppt: u32,
}

impl Geometry {
    /// Geometry matching the paper's configuration, sized to hold
    /// `exported_bytes` of host-visible capacity.
    pub fn for_exported_capacity(exported_bytes: u64) -> Self {
        let g = Geometry {
            page_size: DEFAULT_PAGE_SIZE,
            pages_per_block: (DEFAULT_BLOCK_SIZE / DEFAULT_PAGE_SIZE) as u32,
            blocks: 0,
            over_provision_ppt: 80,
        };
        let exported_pages = exported_bytes.div_ceil(g.page_size);
        // raw = exported / (1 - op); round blocks up and keep at least the
        // minimum pool the GC needs to make forward progress.
        let raw_pages = (exported_pages * 1000).div_ceil(1000 - g.over_provision_ppt as u64);
        let blocks = raw_pages
            .div_ceil(g.pages_per_block as u64)
            .max(Self::MIN_BLOCKS as u64) as u32;
        Geometry { blocks, ..g }
    }

    /// Smallest device we allow: the GC needs spare blocks to relocate into.
    pub const MIN_BLOCKS: u32 = 8;

    /// Total physical pages on the device.
    pub fn physical_pages(&self) -> u64 {
        self.blocks as u64 * self.pages_per_block as u64
    }

    /// Logical pages exported to the host (physical minus over-provisioning).
    pub fn exported_pages(&self) -> u64 {
        self.physical_pages() * (1000 - self.over_provision_ppt as u64) / 1000
    }

    /// Host-visible capacity in bytes.
    pub fn exported_bytes(&self) -> u64 {
        self.exported_pages() * self.page_size
    }

    /// Raw capacity in bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.physical_pages() * self.page_size
    }

    /// Number of pages needed to store `bytes` of data.
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_size)
    }

    /// Validates internal consistency; returns a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.page_size == 0 {
            return Err("page_size must be non-zero".into());
        }
        if self.pages_per_block == 0 {
            return Err("pages_per_block must be non-zero".into());
        }
        if self.blocks < Self::MIN_BLOCKS {
            return Err(format!("need at least {} blocks", Self::MIN_BLOCKS));
        }
        if self.over_provision_ppt >= 1000 {
            return Err("over_provision_ppt must be < 1000".into());
        }
        if self.exported_pages() == 0 {
            return Err("device exports no logical pages".into());
        }
        Ok(())
    }
}

impl Default for Geometry {
    /// A small (64 MB exported) device with paper-default page/block sizes,
    /// convenient for tests.
    fn default() -> Self {
        Geometry::for_exported_capacity(64 * 1024 * 1024)
    }
}

impl Snapshot for Geometry {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.page_size);
        w.put_u32(self.pages_per_block);
        w.put_u32(self.blocks);
        w.put_u32(self.over_provision_ppt);
    }
    fn load(r: &mut SnapReader) -> Self {
        let g = Geometry {
            page_size: r.take_u64(),
            pages_per_block: r.take_u32(),
            blocks: r.take_u32(),
            over_provision_ppt: r.take_u32(),
        };
        if let Err(e) = g.validate() {
            r.corrupt(format!("geometry: {e}"));
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_has_32_pages_per_block() {
        let g = Geometry::default();
        assert_eq!(g.page_size, 4096);
        assert_eq!(g.pages_per_block, 32);
    }

    #[test]
    fn exported_capacity_is_at_least_requested() {
        for mb in [1u64, 7, 64, 129, 1000] {
            let want = mb * 1024 * 1024;
            let g = Geometry::for_exported_capacity(want);
            assert!(
                g.exported_bytes() >= want,
                "asked {want} got {}",
                g.exported_bytes()
            );
            g.validate().unwrap();
        }
    }

    #[test]
    fn over_provisioning_reserves_physical_space() {
        let g = Geometry::for_exported_capacity(256 * 1024 * 1024);
        assert!(g.physical_pages() > g.exported_pages());
        let op = 1.0 - g.exported_pages() as f64 / g.physical_pages() as f64;
        assert!((op - 0.08).abs() < 0.001, "op ratio was {op}");
    }

    #[test]
    fn validate_rejects_degenerate_geometry() {
        let g = Geometry {
            page_size: 0,
            ..Geometry::default()
        };
        assert!(g.validate().is_err());

        let g = Geometry {
            blocks: 2,
            ..Geometry::default()
        };
        assert!(g.validate().is_err());

        let g = Geometry {
            over_provision_ppt: 1000,
            ..Geometry::default()
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn pages_for_rounds_up() {
        let g = Geometry::default();
        assert_eq!(g.pages_for(0), 0);
        assert_eq!(g.pages_for(1), 1);
        assert_eq!(g.pages_for(4096), 1);
        assert_eq!(g.pages_for(4097), 2);
    }

    #[test]
    fn min_device_is_buildable() {
        let g = Geometry::for_exported_capacity(1);
        assert_eq!(g.blocks, Geometry::MIN_BLOCKS);
        g.validate().unwrap();
    }
}

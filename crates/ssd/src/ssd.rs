//! The SSD device façade: byte-granular host interface over the page-level
//! FTL, plus the steady-state warm-up procedure of §IV.

use edm_obs::Recorder;
use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

use crate::ftl::{FtlConfig, FtlError, PageLevelFtl};
use crate::geometry::Geometry;
use crate::latency::{DeviceTime, LatencyModel};
use crate::wear::WearStats;

/// Snapshot of an SSD's externally observable state, cheap to copy out of
/// the simulation for reporting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdSnapshot {
    pub wear: WearStats,
    pub utilization: f64,
    pub mapped_pages: u64,
    pub exported_pages: u64,
    pub measured_ur: Option<f64>,
}

/// One simulated NAND-flash SSD.
///
/// All operations return the [`DeviceTime`] they consumed, so a caller (the
/// OSD service loop) can advance its virtual clock; garbage-collection
/// stalls are charged to the operation that triggered them, which is
/// exactly the blocking behaviour the paper identifies as the driver of
/// load imbalance (§II).
#[derive(Clone)]
pub struct Ssd {
    ftl: PageLevelFtl,
    latency: LatencyModel,
}

impl Ssd {
    pub fn new(geometry: Geometry, latency: LatencyModel) -> Self {
        Ssd {
            ftl: PageLevelFtl::new(geometry, FtlConfig::default()),
            latency,
        }
    }

    pub fn with_config(geometry: Geometry, latency: LatencyModel, config: FtlConfig) -> Self {
        Ssd {
            ftl: PageLevelFtl::new(geometry, config),
            latency,
        }
    }

    /// Convenience constructor: paper latencies, capacity in bytes.
    pub fn with_capacity(exported_bytes: u64) -> Self {
        Ssd::new(
            Geometry::for_exported_capacity(exported_bytes),
            LatencyModel::PAPER,
        )
    }

    pub fn geometry(&self) -> &Geometry {
        self.ftl.geometry()
    }

    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    pub fn wear(&self) -> &WearStats {
        self.ftl.stats()
    }

    pub fn utilization(&self) -> f64 {
        self.ftl.utilization()
    }

    pub fn mapped_pages(&self) -> u64 {
        self.ftl.mapped_pages()
    }

    /// Free exported capacity, in bytes.
    pub fn free_bytes(&self) -> u64 {
        (self.geometry().exported_pages() - self.ftl.mapped_pages()) * self.geometry().page_size
    }

    pub fn snapshot(&self) -> SsdSnapshot {
        SsdSnapshot {
            wear: self.ftl.stats().clone(),
            utilization: self.ftl.utilization(),
            mapped_pages: self.ftl.mapped_pages(),
            exported_pages: self.geometry().exported_pages(),
            measured_ur: self
                .ftl
                .stats()
                .measured_ur(self.geometry().pages_per_block),
        }
    }

    /// Reads `len` bytes starting at logical byte `offset`.
    pub fn read(&mut self, offset: u64, len: u64) -> Result<DeviceTime, FtlError> {
        let (start, n) = self.page_span(offset, len);
        self.ftl.read_span(start, n, &self.latency)
    }

    /// Writes `len` bytes starting at logical byte `offset` (out-of-place).
    pub fn write(&mut self, offset: u64, len: u64) -> Result<DeviceTime, FtlError> {
        let (start, n) = self.page_span(offset, len);
        self.ftl.write_span(start, n, &self.latency)
    }

    /// [`write`](Self::write) with an observability sink for the FTL
    /// events (GC, erases, wear leveling) the write triggers.
    pub fn write_obs(
        &mut self,
        offset: u64,
        len: u64,
        obs: &mut dyn Recorder,
    ) -> Result<DeviceTime, FtlError> {
        let (start, n) = self.page_span(offset, len);
        self.ftl.write_span_obs(start, n, &self.latency, obs)
    }

    /// Unmaps `len` bytes starting at logical byte `offset`.
    pub fn trim(&mut self, offset: u64, len: u64) -> Result<(), FtlError> {
        let (start, n) = self.page_span(offset, len);
        self.ftl.trim_span(start, n)
    }

    /// Converts a byte extent to `(first page, page count)`.
    fn page_span(&self, offset: u64, len: u64) -> (u64, u64) {
        if len == 0 {
            return (0, 0);
        }
        let ps = self.geometry().page_size;
        let first = offset / ps;
        let last = (offset + len - 1) / ps;
        (first, last - first + 1)
    }

    /// Steady-state warm-up (§IV): the paper first writes dummy data equal
    /// to the SSD's capacity so erase counts are measured in steady state.
    ///
    /// We reproduce the effect while preserving the current utilization:
    /// every mapped logical page is rewritten once and the unmapped logical
    /// region is written then trimmed, so every physical block gets
    /// exercised; wear counters are then reset so that subsequent
    /// measurements exclude the cold-start.
    pub fn warm_up(&mut self) -> Result<(), FtlError> {
        let lat = self.latency;
        let exported = self.geometry().exported_pages();
        // Pass 1: rewrite live data (keeps it live, churns blocks).
        // Rewrites never change which pages are mapped, so consecutive
        // mapped runs can go through the batched span path.
        let mut run_start: Option<u64> = None;
        for lpn in 0..=exported {
            let mapped = lpn < exported && self.ftl.is_mapped(lpn);
            match (run_start, mapped) {
                (None, true) => run_start = Some(lpn),
                (Some(start), false) => {
                    self.ftl.write_span(start, lpn - start, &lat)?;
                    run_start = None;
                }
                _ => {}
            }
        }
        // Pass 2: cycle the free logical space through the device once.
        // This one stays per-page: the write/trim interleaving is what
        // bounds the live footprint while every block gets exercised.
        for lpn in 0..exported {
            if !self.ftl.is_mapped(lpn) {
                self.ftl.write(lpn, &lat)?;
                self.ftl.trim(lpn)?;
            }
        }
        self.ftl.stats_mut().reset();
        Ok(())
    }

    /// Resets wear counters without touching data (used between measurement
    /// phases).
    pub fn reset_wear(&mut self) {
        self.ftl.stats_mut().reset();
    }

    /// See [`PageLevelFtl::check_invariants`].
    pub fn check_invariants(&self) -> Result<(), String> {
        self.ftl.check_invariants()
    }
}

impl Snapshot for Ssd {
    fn save(&self, w: &mut SnapWriter) {
        self.ftl.save(w);
        self.latency.save(w);
    }
    fn load(r: &mut SnapReader) -> Self {
        Ssd {
            ftl: PageLevelFtl::load(r),
            latency: LatencyModel::load(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ssd {
        Ssd::new(
            Geometry {
                page_size: 4096,
                pages_per_block: 8,
                blocks: 64,
                over_provision_ppt: 100,
            },
            LatencyModel::PAPER,
        )
    }

    #[test]
    fn byte_ops_round_to_pages() {
        let mut ssd = small();
        // 1 byte still programs a whole page.
        let t = ssd.write(0, 1).unwrap();
        assert_eq!(t.as_micros(), 200);
        // 4097 bytes spans two pages.
        let t = ssd.write(8192, 4097).unwrap();
        assert_eq!(t.as_micros(), 400);
        // An unaligned 8 KB starting mid-page touches three pages.
        let t = ssd.read(100, 8192).unwrap();
        assert_eq!(t.as_micros(), 3 * 25);
        // Zero-length I/O is free.
        assert_eq!(ssd.read(0, 0).unwrap(), DeviceTime::ZERO);
        assert_eq!(ssd.write(0, 0).unwrap(), DeviceTime::ZERO);
    }

    #[test]
    fn trim_releases_capacity() {
        let mut ssd = small();
        let before = ssd.free_bytes();
        ssd.write(0, 16 * 4096).unwrap();
        assert_eq!(ssd.free_bytes(), before - 16 * 4096);
        ssd.trim(0, 16 * 4096).unwrap();
        assert_eq!(ssd.free_bytes(), before);
    }

    #[test]
    fn warm_up_preserves_utilization_and_resets_wear() {
        let mut ssd = small();
        ssd.write(0, 64 * 4096).unwrap();
        let util_before = ssd.utilization();
        ssd.warm_up().unwrap();
        assert!((ssd.utilization() - util_before).abs() < 1e-12);
        assert_eq!(ssd.wear().host_page_writes, 0);
        assert_eq!(ssd.wear().block_erases, 0);
        ssd.check_invariants().unwrap();
    }

    #[test]
    fn warm_up_exercises_gc() {
        let mut ssd = small();
        ssd.write(0, 32 * 4096).unwrap();
        // Warm-up writes ≈ exported capacity: that exceeds raw space, so
        // the GC must have run at least once during it. We can't observe
        // the reset counters, so run it twice and check invariants hold.
        ssd.warm_up().unwrap();
        ssd.warm_up().unwrap();
        ssd.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_reflects_state() {
        let mut ssd = small();
        ssd.write(0, 10 * 4096).unwrap();
        let snap = ssd.snapshot();
        assert_eq!(snap.mapped_pages, 10);
        assert_eq!(snap.wear.host_page_writes, 10);
        assert!(snap.utilization > 0.0);
    }
}

//! Wear and garbage-collection statistics.
//!
//! These counters are what the paper's evaluation measures: total block
//! erase count and write pages per SSD (Fig. 1, Fig. 6), plus the average
//! valid-page ratio of GC victim blocks, uᵣ, which the wear model of
//! §III.B.1 estimates from utilization (Fig. 3).

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

/// Cumulative wear counters of one SSD.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearStats {
    /// Pages written by the host (`Wc` in the paper, Eq. 1). Excludes GC
    /// relocation writes, which are accounted separately as amplification.
    pub host_page_writes: u64,
    /// Pages read by the host.
    pub host_page_reads: u64,
    /// Pages relocated by garbage collection (write amplification).
    pub gc_page_moves: u64,
    /// Total block erase operations (`Ec` in the paper, Eq. 1).
    pub block_erases: u64,
    /// Number of GC victim blocks reclaimed.
    pub gc_victims: u64,
    /// Sum over victims of their valid-page count at reclaim time; divided
    /// by `gc_victims * Np` this yields the measured uᵣ of Fig. 3.
    pub victim_valid_pages: u64,
}

impl WearStats {
    /// Measured average valid-page ratio of victim blocks (uᵣ).
    /// Returns `None` until at least one GC pass has run.
    pub fn measured_ur(&self, pages_per_block: u32) -> Option<f64> {
        if self.gc_victims == 0 {
            return None;
        }
        Some(self.victim_valid_pages as f64 / (self.gc_victims * pages_per_block as u64) as f64)
    }

    /// Write amplification factor: (host writes + GC moves) / host writes.
    /// Returns `None` before the first host write.
    pub fn write_amplification(&self) -> Option<f64> {
        if self.host_page_writes == 0 {
            return None;
        }
        Some((self.host_page_writes + self.gc_page_moves) as f64 / self.host_page_writes as f64)
    }

    /// Resets every counter; used after the steady-state warm-up (§IV:
    /// "dummy data equal to the SSD's capacity are first written ... to
    /// skip the cold-start").
    pub fn reset(&mut self) {
        *self = WearStats::default();
    }

    /// Adds another stats block into this one (cluster-wide aggregation,
    /// Fig. 6 reports aggregate erase counts over all OSDs).
    pub fn merge(&mut self, other: &WearStats) {
        self.host_page_writes += other.host_page_writes;
        self.host_page_reads += other.host_page_reads;
        self.gc_page_moves += other.gc_page_moves;
        self.block_erases += other.block_erases;
        self.gc_victims += other.gc_victims;
        self.victim_valid_pages += other.victim_valid_pages;
    }
}

impl Snapshot for WearStats {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.host_page_writes);
        w.put_u64(self.host_page_reads);
        w.put_u64(self.gc_page_moves);
        w.put_u64(self.block_erases);
        w.put_u64(self.gc_victims);
        w.put_u64(self.victim_valid_pages);
    }
    fn load(r: &mut SnapReader) -> Self {
        WearStats {
            host_page_writes: r.take_u64(),
            host_page_reads: r.take_u64(),
            gc_page_moves: r.take_u64(),
            block_erases: r.take_u64(),
            gc_victims: r.take_u64(),
            victim_valid_pages: r.take_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ur_requires_a_victim() {
        let mut s = WearStats::default();
        assert_eq!(s.measured_ur(32), None);
        s.gc_victims = 4;
        s.victim_valid_pages = 4 * 8; // 8 of 32 pages valid on average
        let ur = s.measured_ur(32).unwrap();
        assert!((ur - 0.25).abs() < 1e-12);
    }

    #[test]
    fn write_amplification_counts_gc_moves() {
        let mut s = WearStats::default();
        assert_eq!(s.write_amplification(), None);
        s.host_page_writes = 100;
        s.gc_page_moves = 50;
        assert!((s.write_amplification().unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_all_fields() {
        let mut a = WearStats {
            host_page_writes: 1,
            host_page_reads: 2,
            gc_page_moves: 3,
            block_erases: 4,
            gc_victims: 5,
            victim_valid_pages: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.host_page_writes, 2);
        assert_eq!(a.host_page_reads, 4);
        assert_eq!(a.gc_page_moves, 6);
        assert_eq!(a.block_erases, 8);
        assert_eq!(a.gc_victims, 10);
        assert_eq!(a.victim_valid_pages, 12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = WearStats {
            host_page_writes: 9,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s.host_page_writes, 0);
    }
}

//! O(1) victim-candidate bookkeeping for the garbage collector.
//!
//! The FTL used to keep GC victim candidates in a
//! `BTreeSet<(valid, block)>`, paying two O(log n) tree operations on
//! every page invalidation (remove the old `(valid, block)` pair, insert
//! the decremented one) — and invalidation runs once per host overwrite
//! and once per trim, squarely on the hot path. A candidate's valid count
//! only ever moves down by one at a time and is bounded by the block's
//! page count, so an array of buckets indexed by valid count supports the
//! same queries with O(1) updates.
//!
//! Ordering contract: the tree iterated in ascending `(valid, block)`
//! order, and victim selection depends on that order. [`VictimBuckets`]
//! reproduces it where it matters: [`peek_min`](VictimBuckets::peek_min)
//! returns the minimum `(valid, block)` pair exactly as
//! `BTreeSet::iter().next()` did. Full iteration order is *not*
//! preserved (buckets are unordered internally); callers that scanned the
//! whole set resolve ties with an explicit total key instead, which picks
//! the same element the ordered scan did.

use edm_snap::{SnapReader, SnapWriter, Snapshot};

/// Victim-candidate set: full blocks bucketed by their valid-page count.
#[derive(Debug, Clone)]
pub struct VictimBuckets {
    /// `buckets[v]` = blocks with exactly `v` valid pages; unordered
    /// within a bucket (removal is `swap_remove`).
    buckets: Vec<Vec<u32>>,
    /// `slot[block]` = `(valid, index in buckets[valid])` while the block
    /// is a candidate.
    slot: Vec<Option<(u32, usize)>>,
    /// Lower bound on the smallest non-empty bucket; advanced lazily by
    /// `peek_min`, pulled back down by inserts and decrements.
    min_valid: usize,
    len: usize,
}

impl VictimBuckets {
    pub fn new(blocks: u32, pages_per_block: u32) -> Self {
        VictimBuckets {
            buckets: vec![Vec::new(); pages_per_block as usize + 1],
            slot: vec![None; blocks as usize],
            min_valid: pages_per_block as usize + 1,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn contains(&self, block: u32) -> bool {
        self.slot[block as usize].is_some()
    }

    /// The valid count recorded for a candidate, `None` for non-members.
    pub fn valid_of(&self, block: u32) -> Option<u32> {
        self.slot[block as usize].map(|(v, _)| v)
    }

    pub fn insert(&mut self, block: u32, valid: u32) {
        debug_assert!(
            self.slot[block as usize].is_none(),
            "block {block} is already a candidate"
        );
        let bucket = &mut self.buckets[valid as usize];
        self.slot[block as usize] = Some((valid, bucket.len()));
        bucket.push(block);
        self.min_valid = self.min_valid.min(valid as usize);
        self.len += 1;
    }

    /// Removes a candidate, returning its recorded valid count.
    ///
    /// # Panics
    /// Panics if the block is not a candidate.
    pub fn remove(&mut self, block: u32) -> u32 {
        let (valid, pos) = self.slot[block as usize]
            .take()
            // edm-audit: allow(panic.expect, "bucket invariant: a block is always removed from the bucket it was filed under")
            .expect("removing a non-candidate block");
        self.remove_at(valid, pos);
        self.len -= 1;
        valid
    }

    /// Moves a candidate down one bucket after a page invalidation.
    /// Returns false (and does nothing) if the block is not a candidate.
    pub fn decrement(&mut self, block: u32) -> bool {
        let Some((valid, pos)) = self.slot[block as usize].take() else {
            return false;
        };
        debug_assert!(valid > 0, "candidate block {block} has no valid pages");
        self.remove_at(valid, pos);
        let bucket = &mut self.buckets[valid as usize - 1];
        self.slot[block as usize] = Some((valid - 1, bucket.len()));
        bucket.push(block);
        self.min_valid = self.min_valid.min(valid as usize - 1);
        true
    }

    /// Takes `block` out of `buckets[valid][pos]` and patches the slot of
    /// whatever `swap_remove` moved into its place.
    fn remove_at(&mut self, valid: u32, pos: usize) {
        let bucket = &mut self.buckets[valid as usize];
        bucket.swap_remove(pos);
        if let Some(&moved) = bucket.get(pos) {
            self.slot[moved as usize] = Some((valid, pos));
        }
    }

    /// The minimum `(valid, block)` pair — the block with the fewest valid
    /// pages, ties broken by the lowest block id. `None` when empty.
    pub fn peek_min(&mut self) -> Option<(u32, u32)> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.min_valid].is_empty() {
            self.min_valid += 1;
        }
        let block = self.buckets[self.min_valid]
            .iter()
            .copied()
            .min()
            // edm-audit: allow(panic.expect, "pop only runs after the scan found this bucket non-empty")
            .expect("bucket is non-empty");
        Some((self.min_valid as u32, block))
    }

    /// All candidates as `(valid, block)` pairs. Ascending by valid count;
    /// order within a valid count is unspecified.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .flat_map(|(v, b)| b.iter().map(move |&blk| (v as u32, blk)))
    }

    /// Structural self-check for tests and `check_invariants`: every
    /// bucket entry must agree with its slot, populations must match, and
    /// the min cursor must still be a lower bound.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut seen = 0usize;
        for (v, bucket) in self.buckets.iter().enumerate() {
            for (pos, &block) in bucket.iter().enumerate() {
                match self.slot.get(block as usize) {
                    Some(&Some((sv, sp))) if sv as usize == v && sp == pos => {}
                    other => {
                        return Err(format!(
                            "bucket {v}[{pos}] holds block {block} but its slot is {other:?}"
                        ))
                    }
                }
                seen += 1;
            }
        }
        if seen != self.len {
            return Err(format!("bucket population {seen} != len {}", self.len));
        }
        if let Some(true_min) = self.buckets.iter().position(|b| !b.is_empty()) {
            if self.min_valid > true_min {
                return Err(format!(
                    "min cursor {} is above the true minimum bucket {true_min}",
                    self.min_valid
                ));
            }
        }
        Ok(())
    }
}

impl Snapshot for VictimBuckets {
    /// Bucket contents are serialized exactly as stored — intra-bucket
    /// order is behaviour-relevant (`swap_remove` positions feed future
    /// slot updates), so a bit-identical restore must preserve it. The
    /// `slot` index is derivable and rebuilt on load.
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.slot.len() as u64);
        self.buckets.save(w);
        w.put_u64(self.min_valid as u64);
        w.put_u64(self.len as u64);
    }
    fn load(r: &mut SnapReader) -> Self {
        let mut blocks = r.take_usize();
        // A corrupt count read outside a CRC-checked section must not
        // drive an unbounded allocation.
        if blocks > 1 << 24 {
            r.corrupt("implausible block count");
            blocks = 0;
        }
        let buckets = Vec::<Vec<u32>>::load(r);
        let min_valid = r.take_usize();
        let len = r.take_usize();
        let mut slot = vec![None; blocks];
        let mut seen = 0usize;
        for (v, bucket) in buckets.iter().enumerate() {
            for (pos, &block) in bucket.iter().enumerate() {
                match slot.get_mut(block as usize) {
                    Some(s @ None) => {
                        *s = Some((v as u32, pos));
                        seen += 1;
                    }
                    _ => r.corrupt("bucket entry out of range or duplicated"),
                }
            }
        }
        if seen != len {
            r.corrupt("bucket population disagrees with recorded len");
        }
        VictimBuckets {
            buckets,
            slot,
            min_valid,
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_peek_remove_roundtrip() {
        let mut v = VictimBuckets::new(8, 4);
        assert!(v.is_empty());
        assert_eq!(v.peek_min(), None);
        v.insert(3, 2);
        v.insert(5, 1);
        v.insert(1, 2);
        assert_eq!(v.len(), 3);
        assert_eq!(v.peek_min(), Some((1, 5)));
        assert_eq!(v.remove(5), 1);
        // Tie at valid = 2: lowest block id wins.
        assert_eq!(v.peek_min(), Some((2, 1)));
        assert!(v.contains(3));
        assert!(!v.contains(5));
        assert_eq!(v.valid_of(3), Some(2));
        v.check_consistency().unwrap();
    }

    #[test]
    fn decrement_moves_between_buckets() {
        let mut v = VictimBuckets::new(4, 4);
        v.insert(0, 4);
        assert!(v.decrement(0));
        assert_eq!(v.valid_of(0), Some(3));
        assert!(!v.decrement(2), "non-member is a no-op");
        assert_eq!(v.peek_min(), Some((3, 0)));
        v.check_consistency().unwrap();
    }

    #[test]
    fn matches_btreeset_semantics_under_random_churn() {
        // Drive the buckets and the original BTreeSet<(valid, block)> with
        // the same operation stream; peek_min must always equal the tree's
        // first element.
        let blocks = 32u32;
        let ppb = 8u32;
        let mut v = VictimBuckets::new(blocks, ppb);
        let mut tree: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut x = 0x1234_5678u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let block = ((x >> 33) % blocks as u64) as u32;
            match (x >> 29) % 3 {
                0 => {
                    if !v.contains(block) {
                        let valid = ((x >> 7) % (ppb as u64 + 1)) as u32;
                        v.insert(block, valid);
                        tree.insert((valid, block));
                    }
                }
                1 => {
                    if let Some(valid) = v.valid_of(block) {
                        if valid > 0 {
                            v.decrement(block);
                            tree.remove(&(valid, block));
                            tree.insert((valid - 1, block));
                        }
                    }
                }
                _ => {
                    if v.contains(block) {
                        let valid = v.remove(block);
                        assert!(tree.remove(&(valid, block)));
                    }
                }
            }
            assert_eq!(v.len(), tree.len());
            let tree_min = tree.iter().next().copied();
            assert_eq!(v.peek_min(), tree_min);
            let ours: BTreeSet<(u32, u32)> = v.iter().collect();
            assert_eq!(ours, tree);
        }
        v.check_consistency().unwrap();
    }
}

//! Property-based tests of the page-level FTL: under arbitrary interleaved
//! write/trim/read workloads the mapping tables stay consistent, data is
//! never lost, and the GC always makes forward progress.

use edm_ssd::{FtlConfig, Geometry, LatencyModel, PageLevelFtl, Ssd};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Trim(u64),
    Read(u64),
}

fn op_strategy(exported: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..exported).prop_map(Op::Write),
        1 => (0..exported).prop_map(Op::Trim),
        1 => (0..exported).prop_map(Op::Read),
    ]
}

fn tiny_geometry() -> Geometry {
    Geometry {
        page_size: 4096,
        pages_per_block: 4,
        blocks: 24,
        over_provision_ppt: 150,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary op sequences keep every FTL invariant intact and the
    /// model (a HashMap of mapped lpns) agrees with the device.
    #[test]
    fn ftl_matches_reference_model(ops in prop::collection::vec(op_strategy(tiny_geometry().exported_pages()), 1..400)) {
        let mut ftl = PageLevelFtl::new(tiny_geometry(), FtlConfig::default());
        let lat = LatencyModel::INSTANT;
        let mut model: HashMap<u64, ()> = HashMap::new();

        for op in ops {
            match op {
                Op::Write(lpn) => {
                    ftl.write(lpn, &lat).unwrap();
                    model.insert(lpn, ());
                }
                Op::Trim(lpn) => {
                    ftl.trim(lpn).unwrap();
                    model.remove(&lpn);
                }
                Op::Read(lpn) => {
                    ftl.read(lpn, &lat).unwrap();
                }
            }
        }

        prop_assert_eq!(ftl.mapped_pages(), model.len() as u64);
        for &lpn in model.keys() {
            prop_assert!(ftl.is_mapped(lpn));
        }
        ftl.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Sustained overwrite pressure at high utilization never wedges the
    /// device: GC reclaims space and erase counts grow.
    #[test]
    fn gc_sustains_overwrite_pressure(seed in 0u64..1000) {
        let g = tiny_geometry();
        let mut ftl = PageLevelFtl::new(g, FtlConfig::default());
        let lat = LatencyModel::INSTANT;
        let exported = g.exported_pages();
        let live = exported * 8 / 10;
        for lpn in 0..live {
            ftl.write(lpn, &lat).unwrap();
        }
        let mut x = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        for _ in 0..2000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ftl.write(x % live, &lat).unwrap();
        }
        prop_assert!(ftl.stats().block_erases > 0);
        prop_assert_eq!(ftl.mapped_pages(), live);
        ftl.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// The byte-granular Ssd façade: free space accounting is exact under
    /// arbitrary write/trim sequences.
    #[test]
    fn ssd_free_bytes_accounting(ops in prop::collection::vec((0u64..80, 1u64..5, any::<bool>()), 1..100)) {
        let mut ssd = Ssd::new(tiny_geometry(), LatencyModel::INSTANT);
        let page = ssd.geometry().page_size;
        let exported = ssd.geometry().exported_pages();
        let mut mapped = vec![false; exported as usize];
        for (start, pages, is_write) in ops {
            let start = start.min(exported - 1);
            let pages = pages.min(exported - start);
            if is_write {
                ssd.write(start * page, pages * page).unwrap();
                for p in start..start + pages { mapped[p as usize] = true; }
            } else {
                ssd.trim(start * page, pages * page).unwrap();
                for p in start..start + pages { mapped[p as usize] = false; }
            }
        }
        let live = mapped.iter().filter(|m| **m).count() as u64;
        prop_assert_eq!(ssd.mapped_pages(), live);
        prop_assert_eq!(ssd.free_bytes(), (exported - live) * page);
    }

    /// Erase counts are monotone in write volume for a fixed working set:
    /// more host writes never produce fewer erases.
    #[test]
    fn erases_monotone_in_write_volume(extra in 1u64..2000) {
        let g = tiny_geometry();
        let lat = LatencyModel::INSTANT;
        let live = g.exported_pages() / 2;
        let run = |writes: u64| {
            let mut ftl = PageLevelFtl::new(g, FtlConfig::default());
            for lpn in 0..live { ftl.write(lpn, &lat).unwrap(); }
            for i in 0..writes { ftl.write(i % live, &lat).unwrap(); }
            ftl.stats().block_erases
        };
        prop_assert!(run(1000 + extra) >= run(1000));
    }
}

mod span_equivalence_props {
    use super::*;
    use edm_ssd::ftl::VictimPolicy;
    use edm_ssd::DeviceTime;

    /// A span op: (start page, page count, kind).
    #[derive(Debug, Clone, Copy)]
    enum SpanOp {
        Write(u64, u64),
        Trim(u64, u64),
        Read(u64, u64),
    }

    fn span_strategy(exported: u64) -> impl Strategy<Value = SpanOp> {
        let extent = (0..exported, 1u64..12);
        prop_oneof![
            3 => extent.clone().prop_map(|(s, n)| SpanOp::Write(s, n)),
            1 => extent.clone().prop_map(|(s, n)| SpanOp::Trim(s, n)),
            1 => extent.prop_map(|(s, n)| SpanOp::Read(s, n)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The batched span entry points must be observationally identical
        /// to per-page loops: same wear stats, same per-block erase
        /// counts, same mapping, same total device time — for every
        /// victim policy and with static leveling exercised.
        #[test]
        fn span_path_is_bit_identical_to_per_page(
            ops in prop::collection::vec(span_strategy(tiny_geometry().exported_pages()), 1..200),
            policy_idx in 0usize..3,
            threshold in prop_oneof![Just(0u64), Just(4u64)],
        ) {
            let policy = [
                VictimPolicy::Greedy,
                VictimPolicy::Fifo,
                VictimPolicy::CostBenefit,
            ][policy_idx];
            let g = tiny_geometry();
            let mut config = FtlConfig { victim_policy: policy, ..FtlConfig::default() };
            config.wear_leveling.static_threshold = threshold;
            let lat = LatencyModel::PAPER;
            let exported = g.exported_pages();

            let mut span_ftl = PageLevelFtl::new(g, config);
            let mut page_ftl = PageLevelFtl::new(g, config);
            let mut span_time = DeviceTime::ZERO;
            let mut page_time = DeviceTime::ZERO;

            for &op in &ops {
                match op {
                    SpanOp::Write(start, n) => {
                        let n = n.min(exported - start);
                        span_time += span_ftl.write_span(start, n, &lat).unwrap();
                        for lpn in start..start + n {
                            page_time += page_ftl.write(lpn, &lat).unwrap();
                        }
                    }
                    SpanOp::Trim(start, n) => {
                        let n = n.min(exported - start);
                        span_ftl.trim_span(start, n).unwrap();
                        for lpn in start..start + n {
                            page_ftl.trim(lpn).unwrap();
                        }
                    }
                    SpanOp::Read(start, n) => {
                        let n = n.min(exported - start);
                        span_time += span_ftl.read_span(start, n, &lat).unwrap();
                        for lpn in start..start + n {
                            page_time += page_ftl.read(lpn, &lat).unwrap();
                        }
                    }
                }
            }

            prop_assert_eq!(span_ftl.stats().clone(), page_ftl.stats().clone());
            prop_assert_eq!(span_ftl.block_erase_counts(), page_ftl.block_erase_counts());
            prop_assert_eq!(span_ftl.mapped_pages(), page_ftl.mapped_pages());
            prop_assert_eq!(span_time, page_time);
            for lpn in 0..exported {
                prop_assert_eq!(span_ftl.is_mapped(lpn), page_ftl.is_mapped(lpn));
            }
            span_ftl.check_invariants().map_err(TestCaseError::fail)?;
            page_ftl.check_invariants().map_err(TestCaseError::fail)?;
        }
    }
}

mod victim_policy_props {
    use super::*;
    use edm_ssd::ftl::VictimPolicy;
    use edm_ssd::FtlConfig;

    fn geometry() -> Geometry {
        Geometry {
            page_size: 4096,
            pages_per_block: 4,
            blocks: 32,
            over_provision_ppt: 150,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// All three victim policies keep the FTL invariants intact and
        /// complete arbitrary overwrite workloads.
        #[test]
        fn any_policy_survives_random_workloads(
            policy_idx in 0usize..3,
            seed in any::<u64>(),
        ) {
            let policy = [
                VictimPolicy::Greedy,
                VictimPolicy::Fifo,
                VictimPolicy::CostBenefit,
            ][policy_idx];
            let g = geometry();
            let mut ftl = PageLevelFtl::new(
                g,
                FtlConfig { victim_policy: policy, ..FtlConfig::default() },
            );
            let lat = LatencyModel::INSTANT;
            let live = g.exported_pages() * 3 / 4;
            for lpn in 0..live {
                ftl.write(lpn, &lat).unwrap();
            }
            let mut x = seed | 1;
            for _ in 0..1500 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ftl.write((x >> 11) % live, &lat).unwrap();
            }
            prop_assert_eq!(ftl.mapped_pages(), live);
            ftl.check_invariants().map_err(TestCaseError::fail)?;
        }

        /// Greedy never relocates more pages than either alternative on
        /// identical workloads.
        #[test]
        fn greedy_is_the_relocation_floor(seed in any::<u64>()) {
            let g = geometry();
            let lat = LatencyModel::INSTANT;
            let run = |policy: VictimPolicy| -> u64 {
                let mut ftl = PageLevelFtl::new(
                    g,
                    FtlConfig { victim_policy: policy, ..FtlConfig::default() },
                );
                let live = g.exported_pages() * 3 / 4;
                for lpn in 0..live {
                    ftl.write(lpn, &lat).unwrap();
                }
                let mut x = seed | 1;
                for _ in 0..3000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let r = x >> 9;
                    let lpn = if r % 10 < 8 { r % (live / 5).max(1) } else { r % live };
                    ftl.write(lpn, &lat).unwrap();
                }
                ftl.stats().gc_page_moves
            };
            let greedy = run(VictimPolicy::Greedy);
            prop_assert!(greedy <= run(VictimPolicy::Fifo));
        }
    }
}

//! The FTL observability hooks: recording must be read-only (bit-identical
//! wear with any recorder) and the journal must tell the GC story.

use edm_obs::{MemoryRecorder, NoopRecorder, ObsLevel, Recorder};
use edm_ssd::ftl::VictimPolicy;
use edm_ssd::{FtlConfig, Geometry, LatencyModel, PageLevelFtl};

fn geometry() -> Geometry {
    Geometry {
        page_size: 4096,
        pages_per_block: 8,
        blocks: 64,
        over_provision_ppt: 120,
    }
}

/// Skewed overwrite workload through the obs entry point.
fn run(config: FtlConfig, obs: &mut dyn Recorder) -> PageLevelFtl {
    let g = geometry();
    let lat = LatencyModel::PAPER;
    let mut ftl = PageLevelFtl::new(g, config);
    let live = g.exported_pages() * 3 / 4;
    ftl.write_span_obs(0, live, &lat, obs).unwrap();
    let mut x = 7u64;
    for _ in 0..4000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let r = x >> 9;
        let lpn = if r % 10 < 8 {
            r % (live / 5).max(1)
        } else {
            r % live
        };
        ftl.write_span_obs(lpn, 1, &lat, obs).unwrap();
    }
    ftl
}

#[test]
fn recording_is_read_only_at_every_level() {
    let config = FtlConfig::default();
    let plain = run(config, &mut NoopRecorder);
    for level in [ObsLevel::Off, ObsLevel::Metrics, ObsLevel::Events] {
        let mut rec = MemoryRecorder::new(level);
        let observed = run(config, &mut rec);
        assert_eq!(plain.stats(), observed.stats(), "level {level:?}");
        assert_eq!(
            plain.block_erase_counts(),
            observed.block_erase_counts(),
            "level {level:?}"
        );
    }
}

#[test]
fn journal_counters_match_wear_stats() {
    let mut rec = MemoryRecorder::new(ObsLevel::Events);
    let ftl = run(FtlConfig::default(), &mut rec);
    let stats = ftl.stats();
    assert!(stats.block_erases > 0, "workload must exercise GC");
    assert_eq!(rec.counter_value("ftl.block_erases"), stats.block_erases);
    assert_eq!(rec.counter_value("ftl.gc_page_moves"), stats.gc_page_moves);
    assert_eq!(
        rec.count_kind("block_erase") as u64,
        stats.block_erases,
        "one erase event per erase"
    );
    assert_eq!(
        rec.count_kind("gc_victim") as u64,
        stats.gc_victims - rec.counter_value("ftl.wear_level_swaps"),
        "every non-leveling victim pick is journaled"
    );
    assert!(rec.count_kind("gc_invoked") > 0);
    // Victim picks carry the policy label.
    assert!(rec
        .journal()
        .iter()
        .filter_map(|e| match &e.event {
            edm_obs::Event::GcVictim { policy, .. } => Some(*policy),
            _ => None,
        })
        .all(|p| p == VictimPolicy::Greedy.label()));
}

#[test]
fn static_leveling_swaps_are_journaled() {
    let mut config = FtlConfig::default();
    config.wear_leveling.static_threshold = 2;
    let mut rec = MemoryRecorder::new(ObsLevel::Events);
    run(config, &mut rec);
    let swaps = rec.counter_value("ftl.wear_level_swaps");
    assert!(swaps > 0, "tight threshold must force static leveling");
    assert_eq!(rec.count_kind("wear_level_swap") as u64, swaps);
}

#[test]
fn metrics_level_has_counters_but_no_journal() {
    let mut rec = MemoryRecorder::new(ObsLevel::Metrics);
    run(FtlConfig::default(), &mut rec);
    assert!(rec.counter_value("ftl.block_erases") > 0);
    assert!(rec.journal().is_empty());
}

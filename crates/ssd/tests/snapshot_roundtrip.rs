//! Snapshot round-trips at the device layer: an FTL saved mid-workload
//! must restore bit-identically (same re-encoding, same invariants) and
//! continue producing the exact same behaviour as the original.

use edm_snap::{SnapReader, SnapWriter, Snapshot};
use edm_ssd::{FtlConfig, Geometry, LatencyModel, Ssd, VictimPolicy, WearLevelConfig};

fn churned_ssd(policy: VictimPolicy, leveling: WearLevelConfig, ops: u64) -> Ssd {
    let g = Geometry {
        page_size: 4096,
        pages_per_block: 8,
        blocks: 64,
        over_provision_ppt: 100,
    };
    let mut ssd = Ssd::with_config(
        g,
        LatencyModel::PAPER,
        FtlConfig {
            victim_policy: policy,
            wear_leveling: leveling,
            ..FtlConfig::default()
        },
    );
    let live = g.exported_bytes() * 7 / 10;
    let mut x = 0xC0FF_EE00_1234_5678u64;
    for i in 0..ops {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = x >> 13;
        let offset = (r % (live / 4096)) * 4096;
        match i % 7 {
            6 => ssd.trim(offset, 4096).unwrap(),
            5 => {
                ssd.read(offset, 8192).unwrap();
            }
            _ => {
                ssd.write(offset, 4096 * (1 + r % 4)).unwrap();
            }
        }
    }
    ssd
}

fn snapshot_bytes(ssd: &Ssd) -> Vec<u8> {
    let mut w = SnapWriter::new();
    ssd.save(&mut w);
    w.into_bytes()
}

#[test]
fn save_load_save_is_byte_identical_across_configs() {
    for (policy, leveling) in [
        (VictimPolicy::Greedy, WearLevelConfig::DEFAULT),
        (VictimPolicy::Fifo, WearLevelConfig::OFF),
        (
            VictimPolicy::CostBenefit,
            WearLevelConfig {
                dynamic: true,
                static_threshold: 8,
            },
        ),
    ] {
        let ssd = churned_ssd(policy, leveling, 3_000);
        let bytes = snapshot_bytes(&ssd);
        let mut r = SnapReader::new(&bytes);
        let restored = Ssd::load(&mut r);
        r.finish("ssd").unwrap();
        restored.check_invariants().unwrap();
        assert_eq!(
            snapshot_bytes(&restored),
            bytes,
            "{policy:?}/{leveling:?}: restored SSD re-encodes differently"
        );
        assert_eq!(restored.wear(), ssd.wear());
        assert_eq!(restored.mapped_pages(), ssd.mapped_pages());
    }
}

#[test]
fn restored_ssd_continues_identically() {
    let mut original = churned_ssd(VictimPolicy::Greedy, WearLevelConfig::DEFAULT, 2_000);
    let bytes = snapshot_bytes(&original);
    let mut r = SnapReader::new(&bytes);
    let mut restored = Ssd::load(&mut r);
    r.finish("ssd").unwrap();

    // Drive both with the same continuation; every returned device time
    // and the final state must agree — the restore is invisible.
    let mut x = 99u64;
    for _ in 0..2_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let offset = ((x >> 17) % 300) * 4096;
        let t_orig = original.write(offset, 4096).unwrap();
        let t_rest = restored.write(offset, 4096).unwrap();
        assert_eq!(t_orig, t_rest, "device time diverged after restore");
    }
    assert_eq!(snapshot_bytes(&original), snapshot_bytes(&restored));
    original.check_invariants().unwrap();
    restored.check_invariants().unwrap();
}

#[test]
fn truncated_ssd_snapshot_fails_cleanly() {
    let ssd = churned_ssd(VictimPolicy::Greedy, WearLevelConfig::DEFAULT, 500);
    let bytes = snapshot_bytes(&ssd);
    for keep in [0, 1, 7, bytes.len() / 3, bytes.len() - 1] {
        let mut r = SnapReader::new(&bytes[..keep]);
        let _ = Ssd::load(&mut r);
        assert!(
            r.finish("ssd").is_err(),
            "truncation to {keep} bytes decoded cleanly"
        );
    }
}

//! All four systems of the paper's evaluation head to head on one trace:
//! Baseline, CMT (Sorrento-style), EDM-HDF, EDM-CDF — a one-trace slice
//! of Figures 5, 6 and 8.
//!
//! Pass a trace name (default `home02`) and an optional scale:
//!
//! ```text
//! cargo run --release -p edm-harness --example policy_shootout -- lair62 0.02
//! ```

use edm_cluster::{run_trace, Cluster, ClusterConfig, SimOptions};
use edm_core::{make_policy, POLICY_NAMES};
use edm_workload::harvard;
use edm_workload::synth::synthesize;

fn main() {
    let mut args = std::env::args().skip(1);
    let trace_name = args.next().unwrap_or_else(|| "home02".into());
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a float"))
        .unwrap_or(0.01);

    let trace = synthesize(&harvard::spec(&trace_name).scaled(scale));
    println!(
        "trace {trace_name} @ scale {scale}: {} records over {} files\n",
        trace.records.len(),
        trace.file_sizes.len()
    );

    let mut rows = Vec::new();
    for name in POLICY_NAMES {
        let cluster = Cluster::build(ClusterConfig::paper(16), &trace).expect("build");
        let mut policy = make_policy(name);
        let r = run_trace(cluster, &trace, policy.as_mut(), SimOptions::default());
        rows.push(r);
    }

    let base_tp = rows[0].throughput_ops_per_sec();
    let base_er = rows[0].aggregate_erases() as f64;
    println!(
        "{:<9} {:>10} {:>9} {:>10} {:>9} {:>7} {:>9}",
        "policy", "ops/s", "vs base", "erases", "vs base", "moved", "erase RSD"
    );
    for r in &rows {
        println!(
            "{:<9} {:>10.0} {:>8.1}% {:>10} {:>8.1}% {:>7} {:>9.3}",
            r.policy,
            r.throughput_ops_per_sec(),
            (r.throughput_ops_per_sec() / base_tp - 1.0) * 100.0,
            r.aggregate_erases(),
            (r.aggregate_erases() as f64 / base_er - 1.0) * 100.0,
            r.moved_objects,
            r.erase_rsd(),
        );
    }
    println!();
    println!("Expected shape (paper §V): HDF ~ CMT > CDF > Baseline on throughput;");
    println!("HDF cuts erases, CMT often increases them; moved: CMT > CDF > HDF.");
}

//! Explore the SSD wear model (Eq. 1–4) against the simulated device.
//!
//! Prints, for a sweep of utilizations, the analytic uᵣ of Eq. 2 and
//! Eq. 3 next to the uᵣ actually measured on the flash simulator under a
//! skewed and a uniform write workload — a miniature of the paper's
//! Fig. 3.
//!
//! ```text
//! cargo run --release -p edm-harness --example wear_model_explorer
//! ```

use edm_core::{u_of_ur, WearModel};
use edm_ssd::{Geometry, LatencyModel, Ssd};

/// Measures uᵣ on a real simulated SSD at a given live-data utilization,
/// under either uniform or skewed (90/10) overwrites.
fn measure(utilization: f64, skewed: bool) -> f64 {
    let capacity = 64u64 << 20; // 64 MB device
    let mut ssd = Ssd::new(
        Geometry::for_exported_capacity(capacity),
        LatencyModel::INSTANT,
    );
    let page = ssd.geometry().page_size;
    let live_pages = (ssd.geometry().exported_pages() as f64 * utilization) as u64;
    for p in 0..live_pages {
        ssd.write(p * page, page).expect("populate");
    }
    ssd.warm_up().expect("warm-up");
    // Overwrite traffic: either uniform over the live set, or 90 % of
    // writes to the first 10 % of pages.
    let mut x = 0x243F6A8885A308D3u64;
    let writes = live_pages * 8;
    for _ in 0..writes {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = x >> 11;
        let p = if skewed {
            if r % 10 < 9 {
                r % (live_pages / 10).max(1)
            } else {
                r % live_pages
            }
        } else {
            r % live_pages
        };
        ssd.write(p * page, page).expect("overwrite");
    }
    ssd.snapshot().measured_ur.unwrap_or(0.0)
}

fn main() {
    let eq2 = WearModel::eq2(32);
    let eq3 = WearModel::paper(32);

    println!("analytic check: u(ur=0.5) = {:.4}", u_of_ur(0.5));
    println!();
    println!("   u | Eq.2 ur | Eq.3 ur | uniform measured | skewed measured");
    println!("-----+---------+---------+------------------+----------------");
    for i in 3..=9 {
        let u = i as f64 / 10.0;
        let uniform = measure(u, false);
        let skewed = measure(u, true);
        println!(
            "{u:.2} |  {:.3}  |  {:.3}  |       {uniform:.3}      |      {skewed:.3}",
            eq2.f_of_u(u),
            eq3.f_of_u(u),
        );
    }
    println!();
    println!("Eq.2 tracks the uniform column; the skewed column falls below it,");
    println!("which is why EDM corrects the estimate with sigma = 0.28 (Eq. 3).");
    println!();
    println!("Eq. 4 in action: erases for 1M page writes on a 32-page-block SSD");
    for u in [0.4, 0.6, 0.8, 0.95] {
        println!(
            "  u = {u:.2}: {:>8.0} erases (ideal floor {:.0})",
            eq3.erase_count(1e6, u),
            1e6 / 32.0
        );
    }
}

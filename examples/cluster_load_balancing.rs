//! Watch EDM balance wear across a cluster: replay a write-skewed trace
//! under Baseline and EDM-HDF and compare the per-OSD erase distribution
//! before/after — the motivation of §II made visible.
//!
//! ```text
//! cargo run --release -p edm-harness --example cluster_load_balancing
//! ```

use edm_cluster::{run_trace, Cluster, ClusterConfig, NoMigration, SimOptions};
use edm_core::EdmHdf;
use edm_workload::harvard;
use edm_workload::synth::synthesize;

fn bar(value: u64, max: u64, width: usize) -> String {
    let filled = if max == 0 {
        0
    } else {
        (value as f64 / max as f64 * width as f64).round() as usize
    };
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

fn main() {
    // lair62: the most write-skewed of the seven traces (Fig. 1 shows its
    // wear variance is among the widest).
    let trace = synthesize(&harvard::spec("lair62").scaled(0.01));
    let osds = 8u32;

    let mut outcomes = Vec::new();
    for policy_name in ["Baseline", "EDM-HDF"] {
        let cluster = Cluster::build(ClusterConfig::paper(osds), &trace).expect("build");
        let report = match policy_name {
            "Baseline" => {
                let mut p = NoMigration;
                run_trace(cluster, &trace, &mut p, SimOptions::default())
            }
            _ => {
                let mut p = EdmHdf::default();
                run_trace(cluster, &trace, &mut p, SimOptions::default())
            }
        };
        outcomes.push(report);
    }

    for report in &outcomes {
        println!("== {} ==", report.policy);
        let max = report
            .per_osd
            .iter()
            .map(|o| o.erase_count)
            .max()
            .unwrap_or(0);
        for o in &report.per_osd {
            println!(
                "  osd{:<2} {:>7} erases  {}",
                o.osd,
                o.erase_count,
                bar(o.erase_count, max, 40)
            );
        }
        println!(
            "  erase RSD {:.3} | aggregate erases {} | throughput {:.0} ops/s | moved {}",
            report.erase_rsd(),
            report.aggregate_erases(),
            report.throughput_ops_per_sec(),
            report.moved_objects
        );
        println!();
    }

    let (base, hdf) = (&outcomes[0], &outcomes[1]);
    println!(
        "EDM-HDF vs Baseline: wear RSD {:.3} -> {:.3}, erases {:+.1}%, throughput {:+.1}%",
        base.erase_rsd(),
        hdf.erase_rsd(),
        (hdf.aggregate_erases() as f64 / base.aggregate_erases() as f64 - 1.0) * 100.0,
        (hdf.throughput_ops_per_sec() / base.throughput_ops_per_sec() - 1.0) * 100.0,
    );
}

//! Compose two tenants' workloads onto one cluster and compare how each
//! migration policy handles the combined skew: a read-heavy home
//! directory tenant plus a write-heavy research tenant — the
//! "non-uniform access distribution" setting of §I, doubled.
//!
//! ```text
//! cargo run --release -p edm-harness --example multi_tenant
//! ```

use edm_cluster::{run_trace, Cluster, ClusterConfig, SimOptions};
use edm_core::{make_policy, POLICY_NAMES};
use edm_workload::synth::synthesize;
use edm_workload::transform::merge;
use edm_workload::{harvard, profile};

fn main() {
    let tenant_a = synthesize(&harvard::spec("home02").scaled(0.01));
    let tenant_b = synthesize(&harvard::spec("lair62").scaled(0.01));
    let combined = merge("home02+lair62", &[&tenant_a, &tenant_b]);

    println!(
        "tenant A (home02): {} records | tenant B (lair62): {} records",
        tenant_a.records.len(),
        tenant_b.records.len()
    );
    let p = profile(&combined);
    println!(
        "combined: {} records, {} files, write gini {:.3}, hot-set overlap {:.3}\n",
        combined.records.len(),
        combined.file_sizes.len(),
        p.write_gini,
        p.hot_set_overlap
    );

    println!(
        "{:<9} {:>10} {:>10} {:>8} {:>10}",
        "policy", "ops/s", "erases", "moved", "erase RSD"
    );
    let mut base_tp = 0.0;
    for name in POLICY_NAMES {
        let cluster = Cluster::build(ClusterConfig::paper(16), &combined).expect("build");
        let mut policy = make_policy(name);
        let r = run_trace(cluster, &combined, policy.as_mut(), SimOptions::default());
        if name == "Baseline" {
            base_tp = r.throughput_ops_per_sec();
        }
        println!(
            "{:<9} {:>10.0} {:>10} {:>8} {:>10.3}  ({:+.1}% vs base)",
            r.policy,
            r.throughput_ops_per_sec(),
            r.aggregate_erases(),
            r.moved_objects,
            r.erase_rsd(),
            (r.throughput_ops_per_sec() / base_tp - 1.0) * 100.0
        );
    }
    println!();
    println!("the write-heavy tenant concentrates wear; EDM-HDF relocates its hot");
    println!("objects without disturbing the read-mostly tenant's working set.");
}

//! Write your own migration scheme: implement `edm_cluster::Migrator`
//! and plug it into the same simulator the paper's policies run on.
//!
//! The example policy below is deliberately simple — "WearRoundRobin":
//! at the migration point it takes the most-written object of the single
//! most-worn OSD and parks it on the least-worn member of the same group.
//! It under-performs EDM-HDF (it ignores the wear model entirely), which
//! is exactly the point: the harness makes that measurable.
//!
//! ```text
//! cargo run --release -p edm-harness --example custom_policy
//! ```

use std::collections::HashMap;

use edm_cluster::{
    run_trace, AccessEvent, AccessKind, Cluster, ClusterConfig, ClusterView, Migrator, MoveAction,
    ObjectId, SimOptions,
};
use edm_core::EdmHdf;
use edm_workload::harvard;
use edm_workload::synth::synthesize;

/// A minimal wear-aware policy: one object, hottest-from-most-worn, to
/// the least-worn group peer.
struct WearRoundRobin {
    write_pages: HashMap<ObjectId, u64>,
}

impl WearRoundRobin {
    fn new() -> Self {
        WearRoundRobin {
            write_pages: HashMap::new(),
        }
    }
}

impl Migrator for WearRoundRobin {
    fn name(&self) -> &str {
        "WearRoundRobin"
    }

    // Hook 1: observe every object-level I/O.
    fn on_access(&mut self, event: AccessEvent) {
        if event.kind == AccessKind::Write {
            *self.write_pages.entry(event.object).or_insert(0) += event.pages;
        }
    }

    // Hook 2: produce movement triples when the simulator asks.
    fn plan(&mut self, view: &ClusterView) -> Vec<MoveAction> {
        // Most-worn OSD by real write volume.
        let Some(hot) = view.osds.iter().max_by_key(|o| o.wc_pages) else {
            return Vec::new();
        };
        // Least-worn member of its group (the intra-group rule of §III.A).
        let Some(cold) = view
            .osds
            .iter()
            .filter(|o| o.group == hot.group && o.osd != hot.osd)
            .min_by_key(|o| o.wc_pages)
        else {
            return Vec::new();
        };
        // Hottest written object currently on the hot device.
        let best = view
            .objects_on(hot.osd)
            .max_by_key(|o| self.write_pages.get(&o.object).copied().unwrap_or(0));
        match best {
            Some(obj) if self.write_pages.get(&obj.object).copied().unwrap_or(0) > 0 => {
                vec![MoveAction {
                    object: obj.object,
                    source: hot.osd,
                    dest: cold.osd,
                }]
            }
            _ => Vec::new(),
        }
    }
}

fn main() {
    let trace = synthesize(&harvard::spec("home02").scaled(0.01));

    println!(
        "{:<15} {:>10} {:>9} {:>8} {:>10}",
        "policy", "ops/s", "erases", "moved", "erase RSD"
    );
    // The custom policy...
    let cluster = Cluster::build(ClusterConfig::paper(16), &trace).expect("build");
    let mut custom = WearRoundRobin::new();
    let r1 = run_trace(cluster, &trace, &mut custom, SimOptions::default());
    println!(
        "{:<15} {:>10.0} {:>9} {:>8} {:>10.3}",
        r1.policy,
        r1.throughput_ops_per_sec(),
        r1.aggregate_erases(),
        r1.moved_objects,
        r1.erase_rsd()
    );

    // ...against the real thing.
    let cluster = Cluster::build(ClusterConfig::paper(16), &trace).expect("build");
    let mut hdf = EdmHdf::default();
    let r2 = run_trace(cluster, &trace, &mut hdf, SimOptions::default());
    println!(
        "{:<15} {:>10.0} {:>9} {:>8} {:>10.3}",
        r2.policy,
        r2.throughput_ops_per_sec(),
        r2.aggregate_erases(),
        r2.moved_objects,
        r2.erase_rsd()
    );

    println!();
    println!(
        "EDM-HDF balances wear to RSD {:.3} vs the toy policy's {:.3}: Algorithm 1",
        r2.erase_rsd(),
        r1.erase_rsd()
    );
    println!("sizes the move set from the wear model instead of guessing one object.");
}

//! Kill an SSD mid-replay and watch the cluster survive it: degraded
//! RAID-5 reads reconstruct the lost units from sibling objects, and the
//! rebuild restores redundancy onto a surviving group member — the
//! fault-tolerance machinery behind §III.A's object-level RAID-5 and
//! §III.D's group design.
//!
//! ```text
//! cargo run --release -p edm-harness --example failure_recovery
//! ```

use edm_cluster::{
    run_trace, Cluster, ClusterConfig, FailureSpec, MigrationSchedule, NoMigration, OsdId,
    SimOptions,
};
use edm_workload::harvard;
use edm_workload::synth::synthesize;

fn main() {
    let trace = synthesize(&harvard::spec("home02").scaled(0.01));
    println!(
        "replaying {} records over {} files on 8 OSDs; OSD 1 dies early\n",
        trace.records.len(),
        trace.file_sizes.len()
    );

    for (label, failures) in [
        ("healthy", vec![]),
        (
            "OSD 1 fails (degraded service only)",
            vec![FailureSpec {
                at_us: 1_000,
                osd: OsdId(1),
                rebuild: false,
            }],
        ),
        (
            "OSD 1 fails, cluster rebuilds",
            vec![FailureSpec {
                at_us: 1_000,
                osd: OsdId(1),
                rebuild: true,
            }],
        ),
    ] {
        let cluster = Cluster::build(ClusterConfig::paper(8), &trace).expect("build");
        let mut policy = NoMigration;
        let r = run_trace(
            cluster,
            &trace,
            &mut policy,
            SimOptions {
                schedule: MigrationSchedule::Never,
                failures,
                checkpoint: None,
                ..SimOptions::default()
            },
        );
        println!("== {label} ==");
        println!(
            "  throughput {:.0} ops/s | mean response {:.1} ms",
            r.throughput_ops_per_sec(),
            r.mean_response_us / 1000.0
        );
        println!(
            "  degraded ops {} | lost ops {} | rebuilt objects {}",
            r.degraded_ops, r.lost_ops, r.rebuilt_objects
        );
        println!();
    }

    println!("degraded mode costs throughput (every lost-unit access fans out to");
    println!("k-1 sibling reads); the rebuild pays an extra burst of reconstruction");
    println!("I/O but restores redundancy — and no data is ever lost with a single");
    println!("failure, because no two objects of a file share an SSD group.");
}

//! Quickstart: build a small SSD cluster, replay a scaled Harvard trace
//! under EDM-HDF, and print the headline numbers.
//!
//! ```text
//! cargo run --release -p edm-harness --example quickstart
//! ```

use edm_cluster::{run_trace, Cluster, ClusterConfig, SimOptions};
use edm_core::EdmHdf;
use edm_workload::harvard;
use edm_workload::synth::synthesize;

fn main() {
    // 1. A workload: home02 from Table 1 of the paper, scaled to 1 % so
    //    the example finishes in seconds.
    let spec = harvard::spec("home02").scaled(0.01);
    let trace = synthesize(&spec);
    println!(
        "trace {}: {} files, {} writes, {} reads",
        trace.name,
        trace.file_sizes.len(),
        trace.stats().write_cnt,
        trace.stats().read_cnt
    );

    // 2. A cluster: 16 OSDs in the paper's configuration (4 groups, 4
    //    objects per file, max utilization ~70 %).
    let cluster = Cluster::build(ClusterConfig::paper(16), &trace).expect("build cluster");
    println!(
        "cluster: 16 OSDs, {:.1} MB each, max utilization {:.2}",
        cluster.osd(edm_cluster::OsdId(0)).capacity_bytes() as f64 / 1e6,
        cluster.max_utilization()
    );

    // 3. Replay under EDM-HDF: migration fires at the trace midpoint.
    let mut policy = EdmHdf::default();
    let report = run_trace(cluster, &trace, &mut policy, SimOptions::default());

    println!("== {} ==", report.policy);
    println!(
        "throughput        {:.0} file ops/s",
        report.throughput_ops_per_sec()
    );
    println!("mean response     {:.0} us", report.mean_response_us);
    println!("aggregate erases  {}", report.aggregate_erases());
    println!(
        "moved objects     {} of {} ({:.2}%)",
        report.moved_objects,
        report.total_objects,
        report.moved_fraction() * 100.0
    );
    println!("erase-count RSD   {:.3}", report.erase_rsd());
}

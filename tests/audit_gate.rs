//! The audit gate as a cargo test: `cargo test` alone — without
//! scripts/check.sh — fails if anyone introduces an unsuppressed
//! determinism/panic-hygiene finding, so the auditor cannot silently
//! rot out of the workflow.

use edm_audit::{audit_workspace, find_workspace_root};

fn workspace_root() -> std::path::PathBuf {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(here).expect("workspace root above crates/harness")
}

#[test]
fn workspace_scans_clean() {
    let outcome = audit_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        outcome.files_scanned > 100,
        "suspiciously few files scanned ({}): wrong root?",
        outcome.files_scanned
    );
    assert!(
        outcome.is_clean(),
        "unsuppressed edm-audit findings:\n{}",
        outcome.render_text()
    );
}

#[test]
fn every_suppression_carries_a_reason() {
    let outcome = audit_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        !outcome.suppressed.is_empty(),
        "the workspace is known to carry suppressions; zero means the \
         pragma matcher broke"
    );
    for s in &outcome.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "empty suppression reason at {}:{}",
            s.finding.path,
            s.finding.line
        );
    }
}

#[test]
fn report_is_deterministic_across_scans() {
    let a = audit_workspace(&workspace_root()).expect("scan a");
    let b = audit_workspace(&workspace_root()).expect("scan b");
    assert_eq!(a.render_json(), b.render_json());
}

//! The audit gate as a cargo test: `cargo test` alone — without
//! scripts/check.sh — fails if anyone introduces an unsuppressed
//! determinism/panic-hygiene finding, so the auditor cannot silently
//! rot out of the workflow.

use edm_audit::{audit_sources, audit_workspace, find_workspace_root, rule_exists};

fn workspace_root() -> std::path::PathBuf {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(here).expect("workspace root above crates/harness")
}

#[test]
fn workspace_scans_clean() {
    let outcome = audit_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        outcome.files_scanned > 100,
        "suspiciously few files scanned ({}): wrong root?",
        outcome.files_scanned
    );
    assert!(
        outcome.is_clean(),
        "unsuppressed edm-audit findings:\n{}",
        outcome.render_text()
    );
}

#[test]
fn every_suppression_carries_a_reason() {
    let outcome = audit_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        !outcome.suppressed.is_empty(),
        "the workspace is known to carry suppressions; zero means the \
         pragma matcher broke"
    );
    for s in &outcome.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "empty suppression reason at {}:{}",
            s.finding.path,
            s.finding.line
        );
    }
}

/// The semantic rule families (interprocedural taint, lock order,
/// unit inference) are registered AND executing: a seeded violation of
/// each family is rejected with a chain-bearing finding by the same
/// engine the workspace gate runs.
#[test]
fn semantic_families_reject_seeded_violations() {
    for rule in [
        "det.taint",
        "conc.lock_order",
        "conc.shared_state",
        "unit.time",
        "unit.wear",
    ] {
        assert!(rule_exists(rule), "{rule} missing from the rule registry");
    }
    let seeded: &[(&str, &str, &str)] = &[
        (
            "det.taint",
            "crates/cluster/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub struct Engine { pub t_us: u64 }\n\
             impl Engine {\n\
                 pub fn stamp(&mut self) {\n\
                     let now = std::time::Instant::now();\n\
                     self.t_us = now;\n\
                 }\n\
             }\n",
        ),
        (
            "conc.lock_order",
            "crates/serve/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             use std::sync::Mutex;\n\
             pub struct P { a: Mutex<u64>, b: Mutex<u64> }\n\
             impl P {\n\
                 pub fn x(&self) { let g = self.a.lock().expect(\"a\"); \
                     let h = self.b.lock().expect(\"b\"); drop((g, h)); }\n\
                 pub fn y(&self) { let h = self.b.lock().expect(\"b\"); \
                     let g = self.a.lock().expect(\"a\"); drop((g, h)); }\n\
             }\n",
        ),
        (
            "unit.time",
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn f(t_us: u64, n_ticks: u64) -> u64 { t_us + n_ticks }\n",
        ),
    ];
    for (rule, path, src) in seeded {
        let out = audit_sources(vec![(path.to_string(), src.to_string())]);
        let hit = out
            .findings
            .iter()
            .find(|f| f.rule == *rule)
            .unwrap_or_else(|| panic!("seeded {rule} violation not rejected:\n{out:?}"));
        assert!(
            !hit.chain.is_empty(),
            "{rule} finding carries no source\u{2192}sink chain: {hit:?}"
        );
    }
}

#[test]
fn report_is_deterministic_across_scans() {
    let a = audit_workspace(&workspace_root()).expect("scan a");
    let b = audit_workspace(&workspace_root()).expect("scan b");
    assert_eq!(a.render_json(), b.render_json());
}

//! Replays every checked-in corpus scenario through the full
//! differential-oracle battery under `cargo test`, so a regression that
//! breaks a previously-found (or hand-picked) scenario fails the gate —
//! not just the nightly fuzz job.

use std::path::PathBuf;

use edm_fuzz::check_scenario;
use edm_harness::Scenario;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

#[test]
fn corpus_scenarios_pass_all_oracles() {
    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("scn"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 3,
        "fuzz/corpus must hold at least 3 seed scenarios, found {}",
        files.len()
    );
    let work = std::env::temp_dir().join(format!("edm-fuzz-replay-{}", std::process::id()));
    std::fs::create_dir_all(&work).unwrap();
    for path in &files {
        let text = std::fs::read_to_string(path).unwrap();
        let scenario = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        if let Err(failure) = check_scenario(&scenario, &work) {
            panic!("{} fails its oracles: {failure}", path.display());
        }
    }
    std::fs::remove_dir_all(&work).ok();
}

#[test]
fn corpus_scenarios_round_trip_through_scenario_text() {
    for path in std::fs::read_dir(corpus_dir()).unwrap() {
        let path = path.unwrap().path();
        if path.extension().and_then(|x| x.to_str()) != Some("scn") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let scenario = Scenario::parse(&text).unwrap();
        let reparsed = Scenario::parse(&scenario.to_text()).unwrap();
        assert_eq!(
            scenario,
            reparsed,
            "{} drifts through to_text",
            path.display()
        );
    }
}

//! Engine ↔ spec conformance: real simulator runs, journaled at full
//! event level, replayed through the `edm-spec` abstract state machine.
//! Every journaled event must be a legal EDM transition — this is the
//! in-tree closure of the loop the `spec_conformance` fuzz oracle and
//! the `check.sh spec` gate step exercise on scenario corpora.

use edm_harness::Scenario;
use edm_obs::{MemoryRecorder, ObsLevel};
use edm_spec::{verify_journal, SpecReport};

fn journal_of(s: &Scenario) -> String {
    let mut rec = MemoryRecorder::new(ObsLevel::Events);
    s.run_with_obs(&mut rec).expect("scenario run failed");
    let mut out = Vec::new();
    rec.write_jsonl(&mut out).expect("journal render failed");
    String::from_utf8(out).expect("journal is UTF-8")
}

fn assert_conformant(journal: &str) -> SpecReport {
    let report = verify_journal(journal);
    assert!(
        report.violation.is_none(),
        "engine journal violates the spec: line {} — {}",
        report.violation.as_ref().map_or(0, |v| v.line),
        report.violation.as_ref().map_or("", |v| v.message.as_str()),
    );
    assert!(report.events > 0, "events run produced an empty journal");
    report
}

#[test]
fn edm_hdf_run_conforms_to_the_spec() {
    let s = Scenario::parse("scale 0.002\nosds 8\npolicy EDM-HDF\nschedule every-tick\n")
        .expect("parse");
    let report = assert_conformant(&journal_of(&s));
    // A planning run must actually exercise the planning transitions.
    for kind in ["run_meta", "block_erase", "trigger_eval", "plan_chosen"] {
        assert!(
            report.kind_counts.contains_key(kind),
            "journal never exercised {kind}"
        );
    }
}

#[test]
fn cmt_run_conforms_to_the_spec() {
    // CMT balances load across group boundaries by design; the spec's
    // same-group rule must recognize the policy exemption.
    let s =
        Scenario::parse("scale 0.002\nosds 8\npolicy CMT\nschedule every-tick\n").expect("parse");
    assert_conformant(&journal_of(&s));
}

#[test]
fn failure_and_rebuild_run_conforms_to_the_spec() {
    let s = Scenario::parse(
        "scale 0.002\nosds 8\npolicy EDM-CDF\nschedule every-tick\nfail 150000 1 rebuild\n",
    )
    .expect("parse");
    let report = assert_conformant(&journal_of(&s));
    assert!(
        report.kind_counts.contains_key("device_failed"),
        "failure injection left no device_failed event"
    );
}

#[test]
fn sharded_journal_conforms_and_matches_sequential_byte_for_byte() {
    // The datacenter smoke shape: stride 2 over 4 groups yields two
    // placement components, so the sharded engine genuinely runs in
    // parallel rather than falling back to the sequential path.
    let seq = Scenario::parse(
        "scale 0.002\nosds 16\ngroups 4\nobjects_per_file 2\nschedule every-tick\n\
         stride 2\nshards 0\naffinity component\n",
    )
    .expect("parse");
    let mut par = seq.clone();
    par.shards = 2;

    let a = journal_of(&seq);
    let b = journal_of(&par);
    assert_eq!(
        a, b,
        "sequential and sharded journals must be byte-identical"
    );

    let report = assert_conformant(&a);
    assert!(
        report.components >= 2,
        "component-affinity journal should carry component tags, saw {}",
        report.components
    );
}

//! Cross-crate integration tests: trace synthesis → cluster build →
//! replay → policies, exercised end to end.

use edm_cluster::{
    run_trace, Cluster, ClusterConfig, MigrationSchedule, Migrator, NoMigration, RunReport,
    SimOptions,
};
use edm_core::{make_policy, Cmt, CmtConfig, EdmCdf, EdmConfig, EdmHdf, POLICY_NAMES};
use edm_workload::synth::synthesize;
use edm_workload::{harvard, Trace};

fn scaled_trace(name: &str, scale: f64) -> Trace {
    synthesize(&harvard::spec(name).scaled(scale))
}

fn run_policy(trace: &Trace, osds: u32, policy: &str) -> RunReport {
    let cluster = Cluster::build(ClusterConfig::paper(osds), trace).expect("build");
    let mut p = make_policy(policy);
    run_trace(cluster, trace, p.as_mut(), SimOptions::default())
}

#[test]
fn every_policy_completes_the_full_replay() {
    let trace = scaled_trace("home02", 0.002);
    for policy in POLICY_NAMES {
        let r = run_policy(&trace, 8, policy);
        assert_eq!(
            r.completed_ops,
            trace.records.len() as u64,
            "{policy} lost records"
        );
        assert!(r.duration_us > 0);
    }
}

#[test]
fn migration_policies_actually_migrate_on_skewed_traces() {
    let trace = scaled_trace("lair62", 0.002);
    for policy in ["CMT", "EDM-HDF", "EDM-CDF"] {
        let r = run_policy(&trace, 8, policy);
        assert!(r.moved_objects > 0, "{policy} moved nothing");
        assert!(r.migrations_triggered >= 1);
        assert!(r.remap_entries <= r.moved_objects);
    }
}

#[test]
fn baseline_never_migrates() {
    let trace = scaled_trace("home03", 0.002);
    let r = run_policy(&trace, 8, "Baseline");
    assert_eq!(r.moved_objects, 0);
    assert_eq!(r.remap_entries, 0);
    assert_eq!(r.migrations_triggered, 0);
}

#[test]
fn hdf_reduces_wear_imbalance_vs_baseline() {
    let trace = scaled_trace("lair62", 0.008);
    let base = run_policy(&trace, 8, "Baseline");
    let hdf = run_policy(&trace, 8, "EDM-HDF");
    assert!(
        hdf.erase_rsd() < base.erase_rsd(),
        "HDF must narrow the erase distribution: {} -> {}",
        base.erase_rsd(),
        hdf.erase_rsd()
    );
}

#[test]
fn hdf_moves_fewer_objects_than_cmt() {
    let trace = scaled_trace("home02", 0.004);
    let hdf = run_policy(&trace, 8, "EDM-HDF");
    let cmt = run_policy(&trace, 8, "CMT");
    assert!(
        hdf.moved_objects < cmt.moved_objects,
        "Fig. 8 ordering violated: HDF {} vs CMT {}",
        hdf.moved_objects,
        cmt.moved_objects
    );
}

#[test]
fn intra_group_rule_holds_for_edm_end_to_end() {
    // After an EDM-HDF run, every remapped object must still live on an
    // OSD of its home group (§III.A/§III.D).
    let trace = scaled_trace("lair62", 0.002);
    let cluster = Cluster::build(ClusterConfig::paper(8), &trace).expect("build");
    let placement = *cluster.catalog.placement();
    let mut policy = EdmHdf::default();
    // Run and inspect through the report-side remap count; then rebuild
    // the final locations by replaying the plan through a fresh catalog —
    // instead we simply re-run and check the catalog via a custom check:
    let report = run_trace(cluster, &trace, &mut policy, SimOptions::default());
    assert!(report.moved_objects > 0);
    // The engine validates plans; a cross-group move would have panicked
    // in `validate_plan` only if enforcement were on. EDM enforces by
    // construction; verify through the policy's own planning output on a
    // fresh view:
    let cluster2 = Cluster::build(ClusterConfig::paper(8), &trace).expect("build");
    let view = cluster2.view(0);
    let mut policy2 = EdmHdf::default();
    // Without any recorded accesses the plan is empty, which is fine; the
    // group rule is structurally tested in edm-core. Here we just make
    // sure planning on a live view does not violate groups.
    for m in policy2.plan(&view) {
        assert_eq!(
            placement.group_of(m.source),
            placement.group_of(m.dest),
            "cross-group EDM move"
        );
    }
}

#[test]
fn forced_midpoint_vs_never_schedules() {
    let trace = scaled_trace("home04", 0.002);
    let cluster = Cluster::build(ClusterConfig::paper(8), &trace).expect("build");
    let mut p = EdmHdf::default();
    let never = run_trace(
        cluster,
        &trace,
        &mut p,
        SimOptions {
            schedule: MigrationSchedule::Never,
            failures: Vec::new(),
            checkpoint: None,
            ..SimOptions::default()
        },
    );
    assert_eq!(never.moved_objects, 0, "Never schedule must not migrate");
}

#[test]
fn trigger_gated_policy_stays_quiet_on_uniform_trace() {
    // The random workload spreads writes uniformly; with the trigger
    // check on (force = false) and a generous lambda, EDM should not move.
    let trace = synthesize(&harvard::random_spec().scaled(0.01));
    let cluster = Cluster::build(ClusterConfig::paper(8), &trace).expect("build");
    let mut policy = EdmHdf::new(EdmConfig {
        force: false,
        lambda: 0.8,
        ..EdmConfig::default()
    });
    let r = run_trace(cluster, &trace, &mut policy, SimOptions::default());
    assert_eq!(
        r.moved_objects, 0,
        "uniform workload must not trip a lambda=0.8 trigger"
    );
}

#[test]
fn cdf_and_hdf_policies_are_configurable() {
    let trace = scaled_trace("deasna", 0.002);
    let cluster = Cluster::build(ClusterConfig::paper(8), &trace).expect("build");
    let mut cdf = EdmCdf::new(EdmConfig {
        cold_threshold: 2.5,
        ..EdmConfig::default()
    });
    let r = run_trace(cluster, &trace, &mut cdf, SimOptions::default());
    assert_eq!(r.completed_ops, trace.records.len() as u64);

    let cluster = Cluster::build(ClusterConfig::paper(8), &trace).expect("build");
    let mut cmt = Cmt::new(CmtConfig {
        lambda: 0.05,
        ..CmtConfig::default()
    });
    let r = run_trace(cluster, &trace, &mut cmt, SimOptions::default());
    assert_eq!(r.completed_ops, trace.records.len() as u64);
}

#[test]
fn reports_are_internally_consistent() {
    let trace = scaled_trace("home02", 0.002);
    for policy in POLICY_NAMES {
        let r = run_policy(&trace, 8, policy);
        let windowed: u64 = r.response_windows.iter().map(|w| w.completed_ops).sum();
        assert_eq!(windowed, r.completed_ops, "{policy} window totals");
        assert_eq!(r.per_osd.len(), 8);
        assert!(r.mean_response_us > 0.0);
        assert!(r.moved_fraction() <= 1.0);
        // Throughput consistency: ops / duration.
        let tp = r.completed_ops as f64 / (r.duration_us as f64 / 1e6);
        assert!((tp - r.throughput_ops_per_sec()).abs() < 1e-6);
    }
}

#[test]
fn same_trace_different_cluster_sizes_scale_sanely() {
    let trace = scaled_trace("home03", 0.004);
    let small = run_policy(&trace, 8, "Baseline");
    let large = run_policy(&trace, 16, "Baseline");
    // More OSDs, more parallel service: the replay must not get slower.
    assert!(
        large.duration_us <= small.duration_us,
        "16 OSDs slower than 8: {} vs {}",
        large.duration_us,
        small.duration_us
    );
}

#[test]
fn noop_policy_trait_object_roundtrip() {
    let mut p: Box<dyn edm_cluster::Migrator> = Box::new(NoMigration);
    assert_eq!(p.name(), "Baseline");
    let trace = scaled_trace("deasna2", 0.001);
    let cluster = Cluster::build(ClusterConfig::paper(8), &trace).expect("build");
    let r = run_trace(cluster, &trace, p.as_mut(), SimOptions::default());
    assert_eq!(r.policy, "Baseline");
}

#[test]
fn memory_bounded_tracker_policy_still_balances() {
    // §IV: EDM caches only the hottest objects' metadata; a tightly
    // bounded tracker must still find the write-hot movers.
    let trace = scaled_trace("lair62", 0.004);
    let run = |capacity: Option<usize>| {
        let cluster = Cluster::build(ClusterConfig::paper(8), &trace).expect("build");
        let mut policy = EdmHdf::new(EdmConfig {
            tracker_capacity: capacity,
            ..EdmConfig::default()
        });
        run_trace(cluster, &trace, &mut policy, SimOptions::default())
    };
    let unbounded = run(None);
    let bounded = run(Some(64));
    assert!(bounded.moved_objects > 0, "bounded tracker moved nothing");
    // The hot cache keeps the movers: wear balance stays in the same
    // ballpark as full tracking.
    assert!(
        bounded.erase_rsd() <= unbounded.erase_rsd() * 2.0 + 0.05,
        "bounded {} vs unbounded {}",
        bounded.erase_rsd(),
        unbounded.erase_rsd()
    );
}

#[test]
fn every_tick_schedule_completes_and_migrates() {
    let trace = scaled_trace("home02", 0.004);
    let mut config = ClusterConfig::paper(8);
    config.wear_tick_us = 200_000; // several rounds within the scaled run
    let cluster = Cluster::build(config, &trace).expect("build");
    let mut policy = EdmHdf::new(EdmConfig {
        force: false,
        ..EdmConfig::default()
    });
    let r = run_trace(
        cluster,
        &trace,
        &mut policy,
        SimOptions {
            schedule: MigrationSchedule::EveryTick,
            failures: Vec::new(),
            checkpoint: None,
            ..SimOptions::default()
        },
    );
    assert_eq!(r.completed_ops, trace.records.len() as u64);
    assert!(r.migrations_triggered >= 1, "continuous mode never fired");
}

#[test]
fn small_cluster_and_alternate_geometry_work() {
    // k = m = 2 on 4 OSDs with a small stripe unit: the placement and
    // RAID layout still hold together end to end.
    let trace = scaled_trace("deasna", 0.002);
    let mut config = ClusterConfig::paper(4);
    config.groups = 2;
    config.objects_per_file = 2;
    config.stripe_unit = 16 * 1024;
    let cluster = Cluster::build(config, &trace).expect("build");
    let mut policy = EdmHdf::default();
    let r = run_trace(cluster, &trace, &mut policy, SimOptions::default());
    assert_eq!(r.completed_ops, trace.records.len() as u64);
    assert_eq!(r.total_objects, trace.file_sizes.len() as u64 * 2);
}

#[test]
fn write_only_and_read_only_traces_replay() {
    for (w, r) in [(500u64, 0u64), (0, 500)] {
        let spec = edm_workload::WorkloadSpec {
            name: "onesided".into(),
            file_cnt: 40,
            write_cnt: w,
            avg_write_size: if w > 0 { 8_192 } else { 0 },
            read_cnt: r,
            avg_read_size: if r > 0 { 8_192 } else { 0 },
            skew: edm_workload::SkewProfile::MODERATE,
            file_sizes: edm_workload::FileSizeModel::DEFAULT,
            users: 4,
            seed: 9,
        };
        let trace = synthesize(&spec);
        let report = run_policy(&trace, 8, "EDM-HDF");
        assert_eq!(report.completed_ops, trace.records.len() as u64);
        if w == 0 {
            // A read-only workload writes nothing and wears nothing.
            assert_eq!(report.aggregate_write_pages(), 0);
            assert_eq!(report.moved_objects, 0, "nothing write-hot to move");
        }
    }
}

#[test]
fn observability_levels_do_not_change_the_run() {
    use edm_harness::scenario::Scenario;
    use edm_obs::{MemoryRecorder, NoopRecorder, ObsLevel};
    let scenario = Scenario::parse(
        "trace home02\nscale 0.002\nosds 8\ngroups 4\npolicy EDM-HDF\n\
         schedule midpoint\nforce true\n",
    )
    .unwrap();
    let baseline = scenario.run_with_obs(&mut NoopRecorder).unwrap();
    for level in [ObsLevel::Off, ObsLevel::Metrics, ObsLevel::Events] {
        let mut rec = MemoryRecorder::new(level);
        let report = scenario.run_with_obs(&mut rec).unwrap();
        assert_eq!(report.duration_us, baseline.duration_us, "{level:?}");
        assert_eq!(report.completed_ops, baseline.completed_ops, "{level:?}");
        assert_eq!(report.moved_objects, baseline.moved_objects, "{level:?}");
        assert_eq!(
            report.aggregate_erases(),
            baseline.aggregate_erases(),
            "{level:?}"
        );
        assert_eq!(
            report.mean_response_us, baseline.mean_response_us,
            "{level:?}"
        );
        if level == ObsLevel::Events {
            // The decision trace the probe renders must be present.
            assert!(rec.count_kind("trigger_eval") >= 1);
            assert_eq!(rec.count_kind("wear_model_input"), 8);
            assert_eq!(rec.count_kind("plan_chosen"), 1);
            assert_eq!(rec.count_kind("plan_assessment"), 1);
            assert!(rec.count_kind("block_erase") > 0);
            // And the journal round-trips through the JSONL writer.
            let mut buf = Vec::new();
            rec.write_jsonl(&mut buf).unwrap();
            let text = String::from_utf8(buf).unwrap();
            assert!(text.lines().count() > rec.journal().len());
            for line in text.lines() {
                edm_obs::json::parse(line).expect("journal line parses");
            }
        }
    }
}

//! Shape tests: the qualitative claims of the paper's evaluation must
//! hold in the reproduction (DESIGN.md §4 "expected shape"). These run on
//! scaled traces, so they assert directions and orderings, not absolute
//! numbers.

use edm_cluster::MigrationSchedule;
use edm_harness::experiments::{fig1, fig3, fig56, fig8};
use edm_harness::runner::RunConfig;

fn cfg(scale: f64) -> RunConfig {
    RunConfig {
        scale,
        schedule: MigrationSchedule::Midpoint,
        response_window_us: None,
        jobs: None,
    }
}

#[test]
fn fig1_shape_wear_variance_under_baseline() {
    let results = fig1::run(&cfg(0.004), 8);
    for r in &results {
        assert!(
            r.erase_rsd() > 0.05,
            "{}: baseline should show wear variance, RSD {}",
            r.trace,
            r.erase_rsd()
        );
    }
    // home02 and lair62 vary more widely than deasna (Fig. 1a).
    let rsd_of = |name: &str| {
        results
            .iter()
            .find(|r| r.trace == name)
            .expect("trace present")
            .erase_rsd()
    };
    assert!(
        rsd_of("home02").max(rsd_of("lair62")) > rsd_of("deasna"),
        "skewed traces must out-vary deasna: home02 {} lair62 {} deasna {}",
        rsd_of("home02"),
        rsd_of("lair62"),
        rsd_of("deasna")
    );
}

#[test]
fn fig3_shape_eq3_fits_skewed_traces_better_than_eq2() {
    let series = fig3::run(&cfg(0.004), &[0.55, 0.65, 0.75, 0.85]);
    for s in &series {
        let (mut eq2_err, mut eq3_err) = (0.0, 0.0);
        for p in &s.points {
            eq2_err += (p.eq2_ur - p.measured_ur).abs();
            eq3_err += (p.eq3_ur - p.measured_ur).abs();
        }
        match s.workload.as_str() {
            // Skewed real-world traces: the σ-corrected Eq. 3 must win.
            "home02" | "lair62" => assert!(
                eq3_err < eq2_err,
                "{}: Eq.3 err {eq3_err} should beat Eq.2 err {eq2_err}",
                s.workload
            ),
            // Uniform random: Eq. 2 must win.
            "random" => assert!(
                eq2_err < eq3_err,
                "random: Eq.2 err {eq2_err} should beat Eq.3 err {eq3_err}"
            ),
            _ => {}
        }
    }
}

#[test]
fn fig56_shape_migration_improves_throughput_and_hdf_saves_erases() {
    // One representative skewed trace to keep test time sane; the full
    // seven-trace matrix is the harness/bench job. At this scale the
    // migration transient is a visible fraction of the run, so the
    // weaker policies are only required not to regress materially.
    let m = fig56::run(&cfg(0.02), &[16], &["home02"]);

    // Fig. 5 shape: HDF clearly beats Baseline; CMT and CDF at worst sit
    // within transient noise of it.
    let hdf_gain = m.throughput_gain("home02", "EDM-HDF", 16);
    assert!(
        hdf_gain > 0.02,
        "EDM-HDF should clearly improve throughput, got {hdf_gain:+.3}"
    );
    for p in ["CMT", "EDM-CDF"] {
        let gain = m.throughput_gain("home02", p, 16);
        assert!(
            gain > -0.10,
            "{p} regressed beyond transient noise: {gain:+.3}"
        );
    }

    // Fig. 6 shape: HDF does not add erases (the paper reports a
    // reduction in all cases) and clearly beats CMT on flash wear.
    let hdf_delta = m.erase_delta("home02", "EDM-HDF", 16);
    assert!(
        hdf_delta < 0.01,
        "EDM-HDF must not add erases, got {hdf_delta:+.3}"
    );
    let cmt_delta = m.erase_delta("home02", "CMT", 16);
    assert!(
        hdf_delta < cmt_delta,
        "HDF ({hdf_delta:+.3}) must burn less flash than CMT ({cmt_delta:+.3})"
    );
    // CDF sits between HDF and CMT (§V.C ordering).
    let cdf_delta = m.erase_delta("home02", "EDM-CDF", 16);
    assert!(
        cdf_delta <= cmt_delta + 1e-9,
        "CDF ({cdf_delta:+.3}) must not out-burn CMT ({cmt_delta:+.3})"
    );
}

#[test]
fn fig8_shape_moved_object_ordering() {
    let m = fig8::run(&cfg(0.006), 8, &["home02"]);
    let cmt = m.moved("home02", "CMT");
    let cdf = m.moved("home02", "EDM-CDF");
    let hdf = m.moved("home02", "EDM-HDF");
    assert!(
        cmt > hdf,
        "CMT ({cmt}) must move more objects than HDF ({hdf})"
    );
    assert!(
        cdf >= hdf,
        "CDF ({cdf}) must move at least as many objects as HDF ({hdf})"
    );
    // §V.E: the percentage of total moved objects is relatively small.
    for p in ["CMT", "EDM-CDF", "EDM-HDF"] {
        let frac = m.moved_fraction("home02", p);
        assert!(frac < 0.25, "{p} moved an implausible fraction {frac}");
    }
}

#[test]
fn fig7_shape_hdf_recovers_below_baseline_cdf_stays_flat() {
    use edm_harness::experiments::fig7;
    let results = fig7::run(&cfg(0.02), 16);
    let home02 = results
        .iter()
        .find(|t| t.trace == "home02")
        .expect("home02 present");
    let mean_of = |policy: &str| {
        home02
            .series
            .iter()
            .find(|(p, _, _, _)| p == policy)
            .map(|(_, _, mean, _)| *mean)
            .expect("policy present")
    };
    let base = mean_of("Baseline");
    let hdf = mean_of("EDM-HDF");
    let cdf = mean_of("EDM-CDF");
    // §V.D: after migration HDF settles below the initial level; over the
    // whole run its mean must beat Baseline.
    assert!(hdf < base, "HDF mean {hdf} should undercut Baseline {base}");
    // CDF barely perturbs the series.
    assert!(
        (cdf / base - 1.0).abs() < 0.08,
        "CDF mean {cdf} should track Baseline {base}"
    );
}

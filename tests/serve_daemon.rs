//! End-to-end tests of the edm-serve daemon over a real loopback socket.
//!
//! Each test binds an ephemeral port, runs the daemon session on a
//! thread, and speaks actual HTTP/1.1 through `TcpStream` — covering
//! the full ingest → wear tick → trigger → migration → observability
//! pipeline, the replay digest equivalence, and the checkpoint/resume
//! convergence contract through the daemon (not just the library).
//!
//! These tests race a real daemon against wall-clock deadlines, so they
//! legitimately read `Instant::now` at the process boundary — the
//! simulation state they assert on stays virtual-time-deterministic.
#![allow(clippy::disallowed_methods)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use edm_cluster::MigrationSchedule;
use edm_obs::ObsLevel;
use edm_scenario::{report_digest, Scenario};
use edm_serve::{dump_ops, run_daemon_on, BackendKind, DaemonConfig, Mode};

fn scenario() -> Scenario {
    // Mirrors fuzz/corpus/random-trace-every-tick.scn: a workload that
    // demonstrably crosses wear ticks and fires migrations.
    Scenario {
        trace: "random".into(),
        scale: 0.002,
        schedule: MigrationSchedule::EveryTick,
        lambda: 0.05,
        ..Scenario::default()
    }
}

fn config(mode: Mode) -> DaemonConfig {
    DaemonConfig {
        scenario: scenario(),
        mode,
        speed: None,
        checkpoint_dir: None,
        checkpoint_every_us: None,
        resume: None,
        journal: None,
        obs_level: ObsLevel::Events,
        backend: BackendKind::Mem,
    }
}

struct Daemon {
    addr: SocketAddr,
    handle: std::thread::JoinHandle<Result<(), String>>,
}

impl Daemon {
    fn start(config: DaemonConfig) -> Daemon {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || run_daemon_on(listener, config));
        Daemon { addr, handle }
    }

    fn request(&self, raw: String) -> String {
        let mut s = TcpStream::connect(self.addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut reply = String::new();
        s.read_to_string(&mut reply).unwrap();
        reply
    }

    /// GET `path`, assert 200, return the body.
    fn get(&self, path: &str) -> String {
        let reply = self.request(format!("GET {path} HTTP/1.1\r\n\r\n"));
        assert!(reply.starts_with("HTTP/1.1 200"), "GET {path}: {reply}");
        body_of(&reply)
    }

    fn post(&self, path: &str, body: &str) -> String {
        let reply = self.request(format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
        assert!(reply.starts_with("HTTP/1.1 200"), "POST {path}: {reply}");
        body_of(&reply)
    }

    /// Polls `/healthz` until it contains `needle` — the view is a
    /// snapshot the session thread republishes at safe points, so state
    /// flips show up eventually rather than on the next request.
    fn wait_health(&self, needle: &str) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if self.get("/healthz").contains(needle) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "healthz never contained {needle:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Polls `/healthz` until it reports `"done":true`.
    fn wait_done(&self) {
        self.wait_health("\"done\":true");
    }

    fn shutdown(self) {
        self.post("/shutdown", "");
        self.handle.join().unwrap().unwrap();
    }
}

fn body_of(reply: &str) -> String {
    match reply.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => panic!("no header/body separator in {reply:?}"),
    }
}

/// Pulls `edm_<name>_total <value>` out of a Prometheus rendering.
fn metric(metrics: &str, name: &str) -> u64 {
    let needle = format!("edm_{name}_total ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(needle.as_str()))
        .unwrap_or_else(|| panic!("{name} not in metrics:\n{metrics}"))
        .trim()
        .parse()
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edm-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn ingest_daemon_runs_the_full_migration_pipeline() {
    let daemon = Daemon::start(config(Mode::Ingest));
    let ops = dump_ops(&scenario());
    let lines: Vec<&str> = ops.lines().collect();

    // Feed the stream in two chunks plus the end marker, like a client.
    let mid = lines.len() / 2;
    daemon.post("/ingest", &format!("{}\n", lines[..mid].join("\n")));
    // Pause/resume mid-stream: the daemon must hold position, not drop ops.
    daemon.post("/pause", "");
    daemon.wait_health("\"paused\":true");
    daemon.post("/resume", "");
    daemon.post("/ingest", &format!("{}\nend\n", lines[mid..].join("\n")));
    daemon.wait_done();

    // The pipeline ran: ticks fired, the trigger tripped, objects moved.
    let metrics = daemon.get("/metrics");
    assert!(metric(&metrics, "sim_ticks") > 0);
    assert!(metric(&metrics, "sim_migration_evaluations") > 0);
    let moved = metric(&metrics, "sim_moved_objects");
    assert!(moved > 0, "no migrations fired:\n{metrics}");

    // /plan carries the journal's latest trigger/plan records.
    let plan = daemon.get("/plan");
    assert!(plan.contains("\"trigger_eval\""), "{plan}");
    assert!(plan.contains("\"plan_chosen\""), "{plan}");

    // /stats agrees with the metrics and saw every line we sent.
    let stats = daemon.get("/stats");
    assert!(
        stats.contains(&format!("\"applied_ops\":{}", lines.len())),
        "{stats}"
    );
    assert!(
        stats.contains(&format!("\"moved_objects\":{moved}")),
        "{stats}"
    );

    // The in-memory backend applied exactly the completed migrations.
    let healthz = daemon.get("/healthz");
    assert!(
        healthz.contains(&format!("\"backend_moves\":{moved}")),
        "{healthz}"
    );
    assert!(healthz.contains("\"backend_errors\":0"), "{healthz}");

    // /nodes exposes the whole cluster.
    assert!(daemon.get("/nodes").contains("\"osds\":16"));
    daemon.shutdown();
}

#[test]
fn replay_daemon_reproduces_the_batch_digest() {
    let expected = report_digest(&scenario().run().unwrap());
    let daemon = Daemon::start(config(Mode::Replay));
    daemon.wait_done();
    let stats = daemon.get("/stats");
    assert!(
        stats.contains(&format!("{expected:#018x}")),
        "digest mismatch: want {expected:#018x} in {stats}"
    );
    assert!(stats.contains("\"mode\":\"replay\""));
    daemon.shutdown();
}

#[test]
fn ingest_daemon_resume_converges_on_uninterrupted_stats() {
    let ops = dump_ops(&scenario());
    let lines: Vec<&str> = ops.lines().collect();
    let ckpt_dir = temp_dir("resume");

    // Uninterrupted reference run.
    let daemon = Daemon::start(config(Mode::Ingest));
    daemon.post("/ingest", &format!("{}\nend\n", lines.join("\n")));
    daemon.wait_done();
    let reference = daemon.get("/stats");
    daemon.shutdown();

    // Interrupted run: feed part of the stream, cut a checkpoint, stop.
    let mut interrupted = config(Mode::Ingest);
    interrupted.checkpoint_dir = Some(ckpt_dir.clone());
    let daemon = Daemon::start(interrupted);
    let part = lines.len() / 3;
    daemon.post("/ingest", &format!("{}\n", lines[..part].join("\n")));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let h = daemon.get("/healthz");
        if h.contains(&format!("\"ingest_accepted\":{part}")) && h.contains("\"ingest_buffered\":0")
        {
            break;
        }
        assert!(Instant::now() < deadline, "partial stream never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon.post("/checkpoint", "");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !daemon.get("/healthz").contains("\"checkpoints\":1") {
        assert!(Instant::now() < deadline, "checkpoint never cut");
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon.shutdown(); // the crash stand-in: state survives only in the snapshot

    let snap = std::fs::read_dir(&ckpt_dir)
        .unwrap()
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .max()
        .expect("no checkpoint written");

    // Resumed run: re-feed the ENTIRE stream; dedup skips what the
    // checkpoint covers and /stats must converge bit-identically.
    let mut resumed = config(Mode::Ingest);
    resumed.resume = Some(snap);
    let daemon = Daemon::start(resumed);
    daemon.post("/ingest", &format!("{}\nend\n", lines.join("\n")));
    daemon.wait_done();
    let converged = daemon.get("/stats");
    let healthz = daemon.get("/healthz");
    daemon.shutdown();

    assert!(
        healthz.contains(&format!("\"skipped_ops\":{part}")),
        "resume dedup did not consume the checkpointed prefix: {healthz}"
    );
    assert_eq!(reference, converged);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn daemon_rejects_malformed_and_unknown_requests() {
    let daemon = Daemon::start(config(Mode::Ingest));
    let reply = daemon.request("BREW /healthz HTTP/1.1\r\n\r\n".to_string());
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    let reply = daemon.request("GET /no-such-endpoint HTTP/1.1\r\n\r\n".to_string());
    assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
    let reply = daemon.request("GET /healthz\r\n\r\n".to_string());
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    // Bad ingest lines are rejected by the world but the daemon survives.
    daemon.post("/ingest", "not a real op\nw 999999 0 1\nend\n");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !daemon.get("/healthz").contains("\"rejected_lines\":2") {
        assert!(Instant::now() < deadline, "rejects never surfaced");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(daemon.get("/healthz").contains("\"ok\":true"));
    daemon.shutdown();
}

//! End-to-end checkpoint/resume determinism through the harness API:
//! a run interrupted at a checkpoint and resumed from the file must
//! produce a report — and therefore a determinism digest — bit-identical
//! to the uninterrupted run's, including under active migration and an
//! injected OSD failure with rebuild. Also covers the failure surface:
//! truncated and bit-flipped snapshot files must be rejected with typed
//! errors, never a panic or a silently different run.

use std::path::PathBuf;

use edm_harness::{report_digest, resume_snapshot, Scenario, SnapMeta};
use edm_obs::NoopRecorder;
use edm_snap::{SnapError, SnapshotFile};

fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edm-snapres-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `scenario` with checkpointing, returning the uninterrupted
/// report's digest and the sorted checkpoint paths.
fn checkpointed_run(scenario: &Scenario, tag: &str) -> (u64, Vec<PathBuf>) {
    let dir = ckpt_dir(tag);
    let report = scenario
        .run_with_obs_checkpointed(&mut NoopRecorder, Some((0, dir.clone())))
        .expect("checkpointed run failed");
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("checkpoint dir unreadable")
        .map(|e| e.expect("dir entry").path())
        .collect();
    snaps.sort();
    assert!(
        snaps.len() >= 2,
        "{tag}: want several checkpoints, got {snaps:?}"
    );
    (report_digest(&report), snaps)
}

fn cleanup(snaps: &[PathBuf]) {
    if let Some(dir) = snaps.first().and_then(|p| p.parent()) {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Scenario 1: plain EDM-HDF run, no faults.
fn plain_scenario() -> Scenario {
    Scenario::parse("trace deasna\nscale 0.002\nosds 8\npolicy EDM-HDF\nschedule midpoint\n")
        .expect("scenario")
}

/// Scenario 2: migration under EveryTick plus a mid-run OSD failure with
/// rebuild — the checkpoint must capture in-flight moves, the failure
/// schedule, and rebuild state.
fn faulted_scenario() -> Scenario {
    Scenario::parse(
        "trace home02\nscale 0.002\nosds 8\npolicy EDM-CDF\nschedule every-tick\n\
         fail 150000 1 rebuild\n",
    )
    .expect("scenario")
}

#[test]
fn plain_run_resumes_bit_identically() {
    let scenario = plain_scenario();
    let (digest, snaps) = checkpointed_run(&scenario, "plain");
    for snap in [&snaps[0], &snaps[snaps.len() / 2]] {
        let (restored, report) = resume_snapshot(snap, &mut NoopRecorder).expect("resume failed");
        assert_eq!(restored, scenario, "embedded scenario round trip");
        assert_eq!(
            report_digest(&report),
            digest,
            "resume from {} diverged",
            snap.display()
        );
    }
    cleanup(&snaps);
}

#[test]
fn faulted_migrating_run_resumes_bit_identically() {
    let scenario = faulted_scenario();
    let (digest, snaps) = checkpointed_run(&scenario, "faulted");

    // The run must actually exercise what the test claims: a failure and
    // migration activity in the uninterrupted report.
    let report = scenario.run().expect("plain rerun failed");
    assert_eq!(report.failed_osds, vec![1], "failure did not fire");
    assert!(report.migrations_triggered > 0, "no migration fired");
    assert_eq!(report_digest(&report), digest, "rerun not deterministic");

    // Resume from every checkpoint — pre-failure ones carry the pending
    // failure schedule, post-failure ones carry rebuild/degraded state.
    for snap in &snaps {
        let (_, resumed) = resume_snapshot(snap, &mut NoopRecorder).expect("resume failed");
        assert_eq!(
            report_digest(&resumed),
            digest,
            "resume from {} diverged",
            snap.display()
        );
    }
    cleanup(&snaps);
}

#[test]
fn truncated_snapshot_fails_with_typed_error() {
    let scenario = plain_scenario();
    let (_, snaps) = checkpointed_run(&scenario, "trunc");
    let bytes = std::fs::read(&snaps[0]).expect("read checkpoint");
    // Every proper prefix must fail cleanly — never panic, never parse.
    for cut in [0, 4, 8, bytes.len() / 3, bytes.len() - 1] {
        let err = SnapshotFile::from_bytes(&bytes[..cut])
            .expect_err(&format!("prefix of {cut} bytes parsed"));
        assert!(
            matches!(
                err,
                SnapError::Truncated { .. } | SnapError::BadMagic | SnapError::CrcMismatch { .. }
            ),
            "unexpected error for {cut}-byte prefix: {err:?}"
        );
    }
    cleanup(&snaps);
}

#[test]
fn bit_flipped_snapshot_fails_with_typed_error() {
    let scenario = plain_scenario();
    let (_, snaps) = checkpointed_run(&scenario, "flip");
    let bytes = std::fs::read(&snaps[0]).expect("read checkpoint");
    // Flip one bit somewhere in each section-ish region of the file.
    for pos in [9, bytes.len() / 4, bytes.len() / 2, bytes.len() - 2] {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x10;
        let dir = ckpt_dir("flip-out");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("corrupt.snap");
        std::fs::write(&path, &corrupt).expect("write corrupt");
        let err = resume_snapshot(&path, &mut NoopRecorder)
            .expect_err(&format!("bit flip at {pos} went unnoticed"));
        // Harness surfaces the typed edm-snap error as a message; the
        // run must never start.
        assert!(
            err.contains("cannot read snapshot")
                || err.contains("bad manifest")
                || err.contains("resume failed")
                || err.contains("bad scenario metadata")
                || err.contains("embedded scenario"),
            "unexpected resume error for flip at {pos}: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    cleanup(&snaps);
}

#[test]
fn snap_meta_round_trips() {
    let scenario = faulted_scenario();
    let meta = SnapMeta {
        scenario: scenario.to_text(),
        trace_fingerprint: 0xDEAD_BEEF_0123_4567,
    };
    let decoded = SnapMeta::decode(&meta.encode()).expect("decode");
    assert_eq!(decoded, meta);
    // The canonical text reparses to the same scenario.
    assert_eq!(
        Scenario::parse(&decoded.scenario).expect("reparse"),
        scenario
    );
}

//! Failure-injection tests: OSD death, degraded RAID-5 service, data
//! loss on double failure, and reconstruction onto surviving group
//! members (§III.A/§III.D machinery under fault).

use edm_cluster::sim::FailureSpec;
use edm_cluster::{
    run_trace, Cluster, ClusterConfig, MigrationSchedule, NoMigration, OsdId, RunReport, SimOptions,
};
use edm_core::EdmHdf;
use edm_workload::synth::synthesize;
use edm_workload::{harvard, Trace};

fn trace(scale: f64) -> Trace {
    synthesize(&harvard::spec("home02").scaled(scale))
}

fn run_with_failures(trace: &Trace, failures: Vec<FailureSpec>) -> RunReport {
    let cluster = Cluster::build(ClusterConfig::paper(8), trace).expect("build");
    let mut policy = NoMigration;
    run_trace(
        cluster,
        trace,
        &mut policy,
        SimOptions {
            schedule: MigrationSchedule::Never,
            failures,
            checkpoint: None,
            ..SimOptions::default()
        },
    )
}

#[test]
fn single_failure_degrades_but_completes_everything() {
    let t = trace(0.002);
    let r = run_with_failures(
        &t,
        vec![FailureSpec {
            at_us: 1_000,
            osd: OsdId(3),
            rebuild: false,
        }],
    );
    assert_eq!(r.completed_ops, t.records.len() as u64, "records lost");
    assert_eq!(r.failed_osds, vec![3]);
    assert!(r.degraded_ops > 0, "no degraded service observed");
    assert_eq!(r.lost_ops, 0, "single failure must be recoverable");
    assert_eq!(r.rebuilt_objects, 0);
}

#[test]
fn degraded_mode_shifts_load_to_siblings() {
    let t = trace(0.002);
    let healthy = run_with_failures(&t, vec![]);
    let failed = run_with_failures(
        &t,
        vec![FailureSpec {
            at_us: 1_000,
            osd: OsdId(0),
            rebuild: false,
        }],
    );
    // The dead OSD stops accumulating busy time; reconstruction reads land
    // on the survivors, so their total busy time grows.
    let healthy_others: u64 = healthy.per_osd.iter().skip(1).map(|o| o.busy_us).sum();
    let failed_others: u64 = failed.per_osd.iter().skip(1).map(|o| o.busy_us).sum();
    assert!(
        failed_others > healthy_others,
        "survivors should absorb reconstruction load: {failed_others} vs {healthy_others}"
    );
    // And the run as a whole slows down.
    assert!(failed.duration_us >= healthy.duration_us);
}

#[test]
fn rebuild_reconstructs_lost_objects_intra_group() {
    let t = trace(0.002);
    let r = run_with_failures(
        &t,
        vec![FailureSpec {
            at_us: 1_000,
            osd: OsdId(2),
            rebuild: true,
        }],
    );
    assert_eq!(r.completed_ops, t.records.len() as u64);
    assert!(r.rebuilt_objects > 0, "nothing was reconstructed");
    // Rebuilt copies count as remapped (they no longer sit on their home).
    assert!(r.remap_entries >= r.rebuilt_objects);
}

#[test]
fn double_failure_in_different_groups_loses_data() {
    // Two failed OSDs in different groups can hold two objects of the
    // same file: RAID-5 cannot reconstruct, and the engine must account
    // the loss rather than wedge.
    let t = trace(0.004);
    let r = run_with_failures(
        &t,
        vec![
            FailureSpec {
                at_us: 1_000,
                osd: OsdId(1),
                rebuild: false,
            },
            FailureSpec {
                at_us: 2_000,
                osd: OsdId(2),
                rebuild: false,
            },
        ],
    );
    assert_eq!(r.completed_ops, t.records.len() as u64, "engine wedged");
    assert_eq!(r.failed_osds, vec![1, 2]);
    assert!(
        r.lost_ops > 0,
        "adjacent-OSD double failure should lose stripes"
    );
}

#[test]
fn same_group_double_failure_does_not_break_raid() {
    // §III.D's whole point: OSDs 0 and 4 share group 0 (8 OSDs, m = 4),
    // and no two objects of one file share a group — so even two failures
    // in the same group must not produce unrecoverable stripes.
    let t = trace(0.004);
    let r = run_with_failures(
        &t,
        vec![
            FailureSpec {
                at_us: 1_000,
                osd: OsdId(0),
                rebuild: false,
            },
            FailureSpec {
                at_us: 2_000,
                osd: OsdId(4),
                rebuild: false,
            },
        ],
    );
    assert_eq!(r.completed_ops, t.records.len() as u64);
    assert_eq!(
        r.lost_ops, 0,
        "same-group failures must never lose data (§III.D)"
    );
    assert!(r.degraded_ops > 0);
}

#[test]
fn failure_during_migration_aborts_cleanly() {
    // Kill an OSD right around the migration midpoint while EDM-HDF is
    // shuffling objects: moves touching the dead device abort, everything
    // else completes.
    let t = trace(0.004);
    let cluster = Cluster::build(ClusterConfig::paper(8), &t).expect("build");
    let mut policy = EdmHdf::default();
    let r = run_trace(
        cluster,
        &t,
        &mut policy,
        SimOptions {
            schedule: MigrationSchedule::Midpoint,
            failures: (0..2)
                .map(|i| FailureSpec {
                    at_us: 1_000 + i * 500_000,
                    osd: OsdId(i as u32),
                    rebuild: false,
                })
                .collect(),
            checkpoint: None,
            ..SimOptions::default()
        },
    );
    assert_eq!(r.completed_ops, t.records.len() as u64);
}

#[test]
fn failure_runs_are_deterministic() {
    let t = trace(0.002);
    let spec = vec![FailureSpec {
        at_us: 5_000,
        osd: OsdId(5),
        rebuild: true,
    }];
    let a = run_with_failures(&t, spec.clone());
    let b = run_with_failures(&t, spec);
    assert_eq!(a.duration_us, b.duration_us);
    assert_eq!(a.degraded_ops, b.degraded_ops);
    assert_eq!(a.rebuilt_objects, b.rebuilt_objects);
    assert_eq!(a.aggregate_erases(), b.aggregate_erases());
}

//! No-op `serde_derive` stand-in for offline builds.
//!
//! This workspace never serializes anything at runtime — the derives exist
//! so downstream code can later swap in the real serde without touching
//! type definitions. Until then, `#[derive(Serialize, Deserialize)]`
//! expands to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no crates-io access, and
//! nothing in the repo serializes at runtime — the derives on the domain
//! types are forward-compatibility markers. This crate provides just
//! enough surface for those annotations to compile: marker traits with
//! blanket impls and re-exported no-op derive macros behind the same
//! `derive` feature flag the real crate uses.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; blanket-implemented so any
/// `T: Serialize` bound is satisfiable.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}

//! Offline stand-in for `rand` 0.8.
//!
//! The build container has no crates-io access, so this crate provides the
//! slice of the `rand` API the workspace actually uses: a deterministic
//! `StdRng` (xoshiro256++ seeded via SplitMix64), `Rng::gen`/`gen_range`/
//! `gen_bool`, and `seq::SliceRandom::shuffle`. The stream differs from
//! upstream `StdRng` (which is ChaCha12), but every consumer in this repo
//! only relies on *seeded determinism*, never on a specific stream.

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented over any `RngCore`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the full-range distribution
    /// (`f64` in `[0, 1)`, integers uniform over their domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from `range`; panics on an empty range, like the
    /// real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable via `Rng::gen` (the `Standard` distribution upstream).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw u64 onto `0..span` without modulo bias worth caring about
/// here (Lemire's widening-multiply reduction).
fn reduce(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + reduce(rng.next_u64(), span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + reduce(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling via Fisher-Yates, matching `SliceRandom::shuffle`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u64> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}

//! Offline stand-in for `criterion`.
//!
//! The build container has no crates-io access, so this crate keeps the
//! workspace's bench targets compiling and useful: `bench_function` runs
//! the routine `sample_size` times after one warm-up and prints mean/min
//! wall-clock (plus throughput when declared). No statistical analysis,
//! no HTML reports, no outlier detection — for tracked numbers use the
//! `edm-perf` binary, which writes BENCH_edm.json.

use std::time::{Duration, Instant};

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target_samples: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let mut line = format!(
            "{}/{}  samples: {}  mean: {}  min: {}",
            self.name,
            id,
            n,
            fmt_duration(mean),
            fmt_duration(min)
        );
        if let Some(t) = &self.throughput {
            let secs = mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(e) => {
                    line.push_str(&format!("  thrpt: {:.3} Kelem/s", *e as f64 / secs / 1e3));
                }
                Throughput::Bytes(by) => {
                    line.push_str(&format!(
                        "  thrpt: {:.3} MiB/s",
                        *by as f64 / secs / 1048576.0
                    ));
                }
            }
        }
        println!("{line}");
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, untimed
        for _ in 0..self.target_samples {
            #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.target_samples {
            let input = setup();
            #[allow(clippy::disallowed_methods)] // wall-clock timing at the process boundary
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Mirrors `criterion_group!`: emits a function running each bench against
/// a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion_main!`: emits `main`, ignoring the `--bench`/`--test`
/// flags cargo passes to harness-free targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 4, "one warm-up plus three samples");
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut sum = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| sum += x, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(sum, 63);
    }
}

//! Offline stand-in for `proptest`.
//!
//! The build container has no crates-io access, so this crate reimplements
//! the slice of proptest this workspace uses: composable generate-only
//! strategies (ranges, tuples, vec, map/filter_map, weighted unions),
//! the `proptest!` runner macro, and the `prop_assert*` family. Cases are
//! generated deterministically from the test name and case index. There is
//! deliberately **no shrinking** — on failure the macro panics with the
//! case number, which is enough to reproduce (the stream is deterministic).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic per-case RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Derives the RNG for `case` of the test named by `name_hash`.
    pub fn for_case(name_hash: u64, case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(
            name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// FNV-1a over the test name; gives each test its own stream family.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Failure raised by `prop_assert*` / `TestCaseError::fail`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. Unlike upstream there is no value tree; `generate`
/// returns the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    fn prop_filter_map<T, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<T>,
    {
        FilterMap {
            base: self,
            f,
            reason,
        }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy; a named helper because `as Box<dyn Strategy<...>>`
/// casts cannot infer the associated type at macro expansion sites.
pub fn __boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_filter_map` adapter; retries until the closure accepts a value.
pub struct FilterMap<S, F> {
    base: S,
    f: F,
    reason: &'static str,
}

impl<S, F, T> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.base.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 10000 candidates: {}", self.reason);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // The chance of hitting the inclusive endpoint exactly is ~2^-53;
        // treating it as half-open is indistinguishable in practice.
        let (lo, hi) = (*self.start(), *self.end());
        if lo == hi {
            return lo;
        }
        lo + rng.0.gen::<f64>() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11);
}

/// Length bounds for `collection::vec`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Vector of values drawn from `element`, with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Weighted choice among boxed strategies (`prop_oneof!`).
pub struct WeightedUnion<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> WeightedUnion<T> {
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        WeightedUnion { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.0.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping out of sync")
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $(($weight as u32, $crate::__boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $((1u32, $crate::__boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), a, b
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "{} (both {:?})",
            format!($($fmt)+), a
        );
    }};
}

/// The test runner. Each `fn name(pat in strategy, ...) { body }` becomes a
/// `#[test]` that runs `config.cases` deterministic cases; the body runs in
/// a closure returning `Result<(), TestCaseError>` so `prop_assert*` and
/// `?` both work. On failure the panic names the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)*);
            let name_hash = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(name_hash, case);
                let ($($arg,)*) = $crate::Strategy::generate(&strategy, &mut rng);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("proptest case {case} failed: {e}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

pub mod prelude {
    /// Lets `prop::collection::vec(...)` resolve after a glob import, the
    /// way the real prelude exposes the crate under the `prop` name.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{fnv1a, TestRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            (a, b) in (0u64..10, 5u32..=6),
            v in prop::collection::vec(0u8..4, 1..9),
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!(!v.is_empty() && v.len() < 9);
            for x in &v {
                prop_assert!(*x < 4);
            }
            let _ = flag;
        }

        #[test]
        fn oneof_respects_weights(x in prop_oneof![3 => 0u64..5, 1 => 10u64..15]) {
            prop_assert!(x < 5 || (10..15).contains(&x));
        }

        #[test]
        fn filter_map_filters(n in (0u64..100).prop_filter_map("even", |n| {
            if n % 2 == 0 { Some(n) } else { None }
        })) {
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case(fnv1a("t"), 3);
        let mut b = TestRng::for_case(fnv1a("t"), 3);
        let s = (0u64..1000, prop::collection::vec(0u32..7, 2..5));
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn just_yields_value() {
        let mut rng = TestRng::for_case(1, 1);
        assert_eq!(Just(42u64).generate(&mut rng), 42);
    }
}
